(* The Request codec contract: parse ∘ print = id on both the text grammar
   and the JSON wire form, for every constructor — including all four
   typed error kinds — plus the shared "line N: ..." error text every
   frontend (batch files, qct query argv, the socket) renders through.

   The round-trip properties run over random schemas from the shared
   [Prop] generator, so dimension counts, cardinalities and value
   spellings vary per case; requests and responses are derived
   deterministically from the case seed. *)

open Qc_cube
module Q = Qc_core.Query
module R = Qc_core.Request
module Jx = Qc_util.Jsonx
module Rng = Qc_util.Rng

(* ---------- random requests/responses over a Prop case ---------- *)

let rand_cell rng (c : Prop.case) =
  Array.init c.Prop.dims (fun i -> Rng.int rng (c.Prop.cards.(i) + 1))

let rand_range rng (c : Prop.case) =
  Array.init c.Prop.dims (fun i ->
      match Rng.int rng 3 with
      | 0 -> [||]
      | k -> Array.init k (fun _ -> 1 + Rng.int rng c.Prop.cards.(i)))

let funcs = [| Agg.Count; Agg.Sum; Agg.Avg; Agg.Min; Agg.Max |]

let rand_func rng = funcs.(Rng.int rng (Array.length funcs))

(* Thresholds stay finite and never -0.0 (Jsonx prints -0.0 as "-0",
   which reparses as the integer 0 — a representation change the
   bit-exact equality would rightly reject). *)
let rand_threshold rng = float_of_int (Rng.int rng 401 - 200) /. 8.0

let rand_query rng c =
  match Rng.int rng 3 with
  | 0 -> R.Point (rand_cell rng c)
  | 1 -> R.Range (rand_range rng c)
  | _ -> R.Iceberg { func = rand_func rng; threshold = rand_threshold rng }

let rand_request rng c =
  match Rng.int rng 5 with
  | 0 | 1 -> R.Query (rand_query rng c)
  | 2 -> R.Batch (Array.init (Rng.int rng 4) (fun _ -> rand_query rng c))
  | 3 -> R.Stats
  | _ -> R.Describe

let rand_agg rng =
  {
    Agg.count = Rng.int rng 1000;
    sum = float_of_int (Rng.int rng 2001 - 1000) /. 4.0;
    min = float_of_int (Rng.int rng 2001 - 1000) /. 4.0;
    max = float_of_int (Rng.int rng 2001 - 1000) /. 4.0;
  }

let rand_error rng c : Q.error =
  match Rng.int rng 4 with
  | 0 -> Q.Arity_mismatch { expected = Rng.int rng 8; got = Rng.int rng 8 }
  | 1 -> Q.Empty_cover (rand_cell rng c)
  | 2 -> Q.Unsupported { backend = "dwarf"; operation = "iceberg over ranges" }
  | _ -> Q.Bad_query "unknown value \"S9\" in dimension Store"

let rand_outcome rng c : R.outcome =
  match Rng.int rng 3 with
  | 0 -> Ok (R.Agg_answer (rand_agg rng))
  | 1 ->
    Ok
      (R.Cells_answer
         (List.init (Rng.int rng 4) (fun _ -> (rand_cell rng c, rand_agg rng))))
  | _ -> Error (rand_error rng c)

let rand_stats rng =
  {
    R.sv_generation = Rng.int rng 100;
    sv_classes = Rng.int rng 10000;
    sv_nodes = Rng.int rng 10000;
    sv_clients = Rng.int rng 64;
    sv_served = Rng.int rng 1_000_000;
    sv_cache_hits = Rng.int rng 1_000_000;
    sv_cache_misses = Rng.int rng 1_000_000;
    sv_cache_evictions = Rng.int rng 1_000_000;
  }

let rand_response rng c =
  match Rng.int rng 6 with
  | 0 | 1 -> R.Answer (rand_outcome rng c)
  | 2 -> R.Answers (Array.init (Rng.int rng 4) (fun _ -> rand_outcome rng c))
  | 3 -> R.Stats_reply (rand_stats rng)
  | 4 -> R.Describe_reply "generation 3 | packed QC-tree: 42 nodes"
  | _ -> R.Overloaded { pending = Rng.int rng 16; max_pending = 1 + Rng.int rng 16 }

(* ---------- round-trip properties ---------- *)

(* Text: every request with a one-line form reparses to itself. *)
let prop_text_roundtrip (c : Prop.case) =
  let schema = Prop.schema_of c in
  let rng = Rng.create (c.Prop.seed lxor 0x7EC7) in
  let ok = ref true in
  for _ = 1 to 25 do
    let req = rand_request rng c in
    match R.to_line schema req with
    | None -> () (* Batch: no one-line text form, by contract *)
    | Some line -> (
      match R.of_line schema line with
      | Ok req' when R.request_equal req req' -> ()
      | Ok _ | Error _ -> QCheck.Test.fail_reportf "text round-trip broke on %S" line)
  done;
  !ok

(* JSON: every request survives print → string → parse → decode,
   through the same of_wire entry point the server uses. *)
let prop_json_request_roundtrip (c : Prop.case) =
  let schema = Prop.schema_of c in
  let rng = Rng.create (c.Prop.seed lxor 0x15AC) in
  let ok = ref true in
  for _ = 1 to 25 do
    let req = rand_request rng c in
    let wire = Jx.to_string (R.request_to_json schema req) in
    match R.of_wire schema wire with
    | Ok req' when R.request_equal req req' -> ()
    | Ok _ | Error _ -> QCheck.Test.fail_reportf "JSON request round-trip broke on %s" wire
  done;
  !ok

(* JSON: every response — all five constructors, both outcome shapes,
   all four typed error kinds — survives the client-side decode. *)
let prop_json_response_roundtrip (c : Prop.case) =
  let schema = Prop.schema_of c in
  let rng = Rng.create (c.Prop.seed lxor 0x3E5B) in
  let ok = ref true in
  for _ = 1 to 25 do
    let resp = rand_response rng c in
    let wire = Jx.to_string (R.response_to_json schema resp) in
    match Jx.parse wire with
    | Error msg -> QCheck.Test.fail_reportf "response did not reparse as JSON (%s): %s" msg wire
    | Ok j -> (
      match R.response_of_json schema j with
      | Ok resp' when R.response_equal resp resp' -> ()
      | Ok _ -> QCheck.Test.fail_reportf "response round-trip changed the value on %s" wire
      | Error msg -> QCheck.Test.fail_reportf "response decode failed (%s) on %s" msg wire)
  done;
  !ok

(* ---------- unit tests: grammar + the one shared error text ---------- *)

let sales_schema () =
  let s = Schema.create [ "Store"; "Product"; "Season" ] in
  List.iter
    (fun (d, vs) -> List.iter (fun v -> ignore (Schema.encode_value s d v)) vs)
    [ (0, [ "S1"; "S2" ]); (1, [ "P1"; "P2" ]); (2, [ "f"; "s" ]) ];
  s

let check_parses schema line expected =
  match R.of_line schema line with
  | Ok req ->
    Alcotest.(check bool) (Printf.sprintf "%S parses to the expected request" line) true
      (R.request_equal req expected)
  | Error e -> Alcotest.failf "%S did not parse: %s" line (Q.error_to_string ~schema e)

let test_grammar () =
  let s = sales_schema () in
  check_parses s "point S1,P2,*" (R.Query (R.Point [| 1; 2; 0 |]));
  check_parses s "  point  *,*,*  " (R.Query (R.Point [| 0; 0; 0 |]));
  check_parses s "range *,P1|P2,f" (R.Query (R.Range [| [||]; [| 1; 2 |]; [| 1 |] |]));
  check_parses s "iceberg sum 25" (R.Query (R.Iceberg { func = Agg.Sum; threshold = 25.0 }));
  check_parses s "stats" R.Stats;
  check_parses s "describe" R.Describe

let expect_bad schema line =
  match R.of_line schema line with
  | Ok _ -> Alcotest.failf "%S parsed but should not" line
  | Error e -> Q.error_to_string ~schema e

let starts_with ~prefix s = String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let test_grammar_errors () =
  let s = sales_schema () in
  ignore (expect_bad s "point S9,*,*");
  ignore (expect_bad s "range *,*");        (* arity *)
  ignore (expect_bad s "iceberg sum");      (* missing threshold *)
  ignore (expect_bad s "iceberg frob 1");   (* unknown function *)
  ignore (expect_bad s "stats now");        (* bare keyword takes no args *)
  let msg = expect_bad s "frobnicate 1" in
  Alcotest.(check bool) "unknown keyword names the alternatives" true
    (starts_with ~prefix:"bad query: unknown request \"frobnicate\"" msg)

let test_line_error_text () =
  let s = sales_schema () in
  (* the one shared spelling: Bad_query "line N: ..." whatever the source *)
  (match R.of_line ~lineno:7 s "point S9,*,*" with
  | Error (Q.Bad_query m) ->
    Alcotest.(check bool) "of_line ~lineno normalizes to line N text" true
      (starts_with ~prefix:"line 7: " m)
  | Ok _ | Error _ -> Alcotest.fail "bad point did not produce Bad_query");
  (* queries_of_lines numbers physical lines, comments included *)
  (match R.queries_of_lines s "# header\npoint *,*,*\n\npoint S9,*,*\n" with
  | Error (Q.Bad_query m) ->
    Alcotest.(check bool) "queries_of_lines points at the physical line" true
      (starts_with ~prefix:"line 4: " m)
  | Ok _ | Error _ -> Alcotest.fail "bad batch line did not produce Bad_query");
  (* protocol requests are not data queries *)
  match R.queries_of_lines s "stats\n" with
  | Error (Q.Bad_query m) ->
    Alcotest.(check bool) "stats rejected from a query file" true
      (starts_with ~prefix:"line 1: " m)
  | Ok _ | Error _ -> Alcotest.fail "stats in a query file did not fail"

let test_wire_forms () =
  let s = sales_schema () in
  (* the wire takes JSON and the text grammar on the same port *)
  (match R.of_wire s {|{"op":"point","cell":["S1","P2","*"]}|} with
  | Ok req ->
    Alcotest.(check bool) "JSON wire form decodes" true
      (R.request_equal req (R.Query (R.Point [| 1; 2; 0 |])))
  | Error e -> Alcotest.failf "JSON wire form failed: %s" (Q.error_to_string e));
  (match R.of_wire s "point S1,P2,*" with
  | Ok req ->
    Alcotest.(check bool) "text wire form decodes" true
      (R.request_equal req (R.Query (R.Point [| 1; 2; 0 |])))
  | Error e -> Alcotest.failf "text wire form failed: %s" (Q.error_to_string e));
  (match R.of_wire s "{not json" with
  | Error (Q.Bad_query m) ->
    Alcotest.(check bool) "malformed JSON is a typed Bad_query" true
      (starts_with ~prefix:"bad JSON: " m)
  | Ok _ | Error _ -> Alcotest.fail "malformed JSON did not fail as Bad_query");
  (* Batch has no one-line text form *)
  Alcotest.(check bool) "to_line Batch = None" true
    (Option.is_none (R.to_line s (R.Batch [| R.Point [| 0; 0; 0 |] |])))

let test_response_decode_errors () =
  let s = sales_schema () in
  let bad j msg_part =
    match Jx.parse j with
    | Error e -> Alcotest.failf "fixture %S is not JSON: %s" j e
    | Ok j -> (
      match R.response_of_json s j with
      | Ok _ -> Alcotest.failf "%s decoded but should not" msg_part
      | Error _ -> ())
  in
  bad {|{"status":"weird"}|} "unknown status";
  bad {|{"no_status":1}|} "missing status";
  bad {|{"status":"ok","outcomes":3}|} "non-array outcomes";
  bad {|{"status":"overloaded","pending":1}|} "overloaded missing max_pending"

let () =
  Alcotest.run "qc_request"
    [
      ( "roundtrip",
        [
          Prop.qcheck_case ~count:150 ~name:"text codec: of_line (to_line r) = r"
            Prop.arb_case prop_text_roundtrip;
          Prop.qcheck_case ~count:150 ~name:"JSON codec: of_wire (to_json r) = r"
            Prop.arb_case prop_json_request_roundtrip;
          Prop.qcheck_case ~count:150
            ~name:"JSON codec: response_of_json (response_to_json r) = r" Prop.arb_case
            prop_json_response_roundtrip;
        ] );
      ( "grammar",
        [
          Alcotest.test_case "accepted forms" `Quick test_grammar;
          Alcotest.test_case "rejected forms" `Quick test_grammar_errors;
          Alcotest.test_case "shared line N error text" `Quick test_line_error_text;
          Alcotest.test_case "wire accepts JSON and text" `Quick test_wire_forms;
          Alcotest.test_case "client-side decode errors" `Quick test_response_decode_errors;
        ] );
    ]
