(* The span tracer: nesting, attributes, the disabled fast path, the
   drain/absorb merge discipline, well-formedness of the span tree a
   traced parallel batch produces, and the Chrome trace-event export. *)

open Qc_util
module T = Trace
module E = Qc_core.Engine
open Qc_cube

let fresh () =
  T.reset ();
  T.set_enabled true

let teardown () =
  T.set_enabled false;
  T.reset ()

let with_trace f () =
  fresh ();
  Fun.protect ~finally:teardown f

let span_end s = s.T.sp_start_ns + s.T.sp_dur_ns

(* the raising List.assoc would surface a missing attr as an uncaught
   Not_found far from the bug (qclint: raising-find); fail by name instead *)
let attr name args =
  match List.assoc_opt name args with
  | Some v -> v
  | None -> Alcotest.failf "span lacks the %S attr" name

(* ---------- with_span basics ---------- *)

let test_nesting_and_attrs () =
  let v =
    T.with_span ~cat:"t" ~args:[ ("k", T.Int 1) ] "outer" (fun () ->
        T.with_span "inner" (fun () ->
            T.add_attr "r" (T.Bool true);
            42))
  in
  Alcotest.(check int) "body value is returned" 42 v;
  match T.spans () with
  | [ inner; outer ] ->
    (* spans are listed oldest-finished first: inner closes before outer *)
    Alcotest.(check string) "inner name" "inner" inner.T.sp_name;
    Alcotest.(check string) "outer name" "outer" outer.T.sp_name;
    Alcotest.(check string) "explicit category" "t" outer.T.sp_cat;
    Alcotest.(check string) "default category" "qc" inner.T.sp_cat;
    Alcotest.(check bool) "construction-time attr" true
      (attr "k" outer.T.sp_args = T.Int 1);
    Alcotest.(check bool) "add_attr lands on the innermost span" true
      (attr "r" inner.T.sp_args = T.Bool true);
    Alcotest.(check bool) "outer has no stray attr" true
      (not (List.mem_assoc "r" outer.T.sp_args));
    let tid = (Domain.self () :> int) in
    Alcotest.(check int) "tid is the Domain id" tid outer.T.sp_tid;
    Alcotest.(check bool) "inner starts within outer" true
      (outer.T.sp_start_ns <= inner.T.sp_start_ns);
    Alcotest.(check bool) "inner ends within outer" true (span_end inner <= span_end outer)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_disabled_is_free () =
  T.set_enabled false;
  let v = T.with_span "ghost" (fun () -> T.add_attr "a" (T.Int 1); 7) in
  Alcotest.(check int) "body still runs" 7 v;
  Alcotest.(check int) "nothing recorded" 0 (T.span_count ())

let test_exception_still_records () =
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      T.with_span "failing" (fun () -> failwith "boom"));
  match T.spans () with
  | [ s ] -> Alcotest.(check string) "span recorded despite raise" "failing" s.T.sp_name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* ---------- drain / absorb across domains ---------- *)

let test_drain_absorb () =
  T.with_span "local" (fun () -> ());
  let deltas =
    Array.init 2 (fun k ->
        Domain.spawn (fun () ->
            T.with_span (Printf.sprintf "worker-%d" k) (fun () -> ());
            T.drain ()))
    |> Array.map Domain.join
  in
  Alcotest.(check int) "worker spans invisible before absorb" 1 (T.span_count ());
  Array.iter T.absorb deltas;
  let spans = T.spans () in
  Alcotest.(check int) "all spans merged" 3 (List.length spans);
  let tids = List.sort_uniq Int.compare (List.map (fun s -> s.T.sp_tid) spans) in
  Alcotest.(check int) "worker spans keep their own track" 3 (List.length tids)

(* ---------- a traced parallel batch ---------- *)

let make_packed () =
  let table =
    Qc_data.Synthetic.generate { dims = 4; cardinality = 6; rows = 400; zipf = 1.2; seed = 7 }
  in
  let tree = Qc_core.Qc_tree.of_table table in
  (table, Qc_core.Packed.of_tree tree)

let make_queries table =
  let d = Table.n_dims table in
  let points =
    List.init 12 (fun i ->
        let c = Cell.copy (Table.tuple table (i * 17 mod Table.n_rows table)) in
        (* mask a couple of dimensions to ALL so covers vary *)
        c.(i mod d) <- Cell.all;
        c.((i + 1) mod d) <- Cell.all;
        E.Point c)
  in
  Array.of_list
    (points
    @ [
        E.Point (Cell.make_all d);
        E.Range (Array.make d [||]);
        E.Iceberg { func = Agg.Sum; threshold = 10.0 };
      ])

let run_traced ~jobs packed queries =
  fresh ();
  let b = E.run_batch ~jobs (module E.Packed_backend) packed queries in
  T.set_enabled false;
  let spans = T.spans () in
  T.reset ();
  (b, spans)

let count name spans = List.length (List.filter (fun s -> s.T.sp_name = name) spans)

(* Well-formedness of one Domain's track: sorted by start (ties: longer
   first), every span must either nest fully inside the innermost still
   open span or start after it ended — partial overlap is a tracer bug. *)
let check_track tid spans =
  let sorted =
    List.sort
      (fun a b ->
        if a.T.sp_start_ns <> b.T.sp_start_ns then
          Int.compare a.T.sp_start_ns b.T.sp_start_ns
        else Int.compare b.T.sp_dur_ns a.T.sp_dur_ns)
      spans
  in
  let stack = ref [] in
  List.iter
    (fun s ->
      let rec pop () =
        match !stack with
        | e :: rest when e <= s.T.sp_start_ns ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
      | e :: _ ->
        Alcotest.(check bool)
          (Printf.sprintf "track %d: %s nests fully inside its parent" tid s.T.sp_name)
          true
          (span_end s <= e)
      | [] -> ());
      stack := span_end s :: !stack)
    sorted

let test_batch_span_tree () =
  let table, packed = make_packed () in
  let queries = make_queries table in
  let jobs = 4 in
  let b, spans = run_traced ~jobs packed queries in
  Alcotest.(check int) "executor used the requested jobs" jobs b.E.jobs;
  Alcotest.(check int) "one batch span" 1 (count "engine.batch" spans);
  Alcotest.(check int) "one chunk span per job" jobs (count "engine.chunk" spans);
  let n_points =
    Array.length (Array.of_list (List.filter (fun q -> E.query_kind q = "point") (Array.to_list queries)))
  in
  Alcotest.(check int) "one span per point query" n_points (count "point" spans);
  Alcotest.(check int) "one span per range query" 1 (count "range" spans);
  Alcotest.(check int) "one span per iceberg query" 1 (count "iceberg" spans);
  (* every point span carries the backend and the Figure-13 node count *)
  List.iter
    (fun s ->
      if s.T.sp_name = "point" then begin
        Alcotest.(check bool) "point span has backend attr" true
          (attr "backend" s.T.sp_args = T.String "packed");
        match List.assoc_opt "nodes" s.T.sp_args with
        | Some (T.Int k) ->
          Alcotest.(check bool) "node accesses are positive" true (k >= 1)
        | _ -> Alcotest.fail "point span lacks a nodes attr"
      end)
    spans;
  (* per-Domain tracks are well-formed trees: no orphan or partially
     overlapping spans *)
  let tids = List.sort_uniq Int.compare (List.map (fun s -> s.T.sp_tid) spans) in
  Alcotest.(check bool) "more than one track" true (List.length tids > 1);
  List.iter
    (fun tid -> check_track tid (List.filter (fun s -> s.T.sp_tid = tid) spans))
    tids;
  (* every per-query span is enclosed by some chunk span on its track *)
  List.iter
    (fun s ->
      if s.T.sp_cat = "engine" && s.T.sp_name <> "engine.batch" && s.T.sp_name <> "engine.chunk"
      then
        Alcotest.(check bool)
          (Printf.sprintf "%s span lies inside a chunk span" s.T.sp_name)
          true
          (List.exists
             (fun c ->
               c.T.sp_name = "engine.chunk" && c.T.sp_tid = s.T.sp_tid
               && c.T.sp_start_ns <= s.T.sp_start_ns
               && span_end s <= span_end c)
             spans))
    spans

(* The per-query span multiset must not depend on the job count; only the
   executor's own chunk spans may differ (one per job). *)
let test_span_count_determinism () =
  let table, packed = make_packed () in
  let queries = make_queries table in
  let _, s1 = run_traced ~jobs:1 packed queries in
  let _, s4 = run_traced ~jobs:4 packed queries in
  let query_names spans =
    List.sort String.compare
      (List.filter_map
         (fun s ->
           if s.T.sp_name = "engine.batch" || s.T.sp_name = "engine.chunk" then None
           else Some s.T.sp_name)
         spans)
  in
  Alcotest.(check (list string)) "query span multiset is jobs-independent" (query_names s1)
    (query_names s4);
  Alcotest.(check int) "jobs=1 has one chunk span" 1 (count "engine.chunk" s1);
  Alcotest.(check int) "jobs=4 has four chunk spans" 4 (count "engine.chunk" s4)

(* ---------- Chrome trace-event export ---------- *)

let test_chrome_json () =
  let table, packed = make_packed () in
  let queries = make_queries table in
  fresh ();
  let _ = E.run_batch ~jobs:3 (module E.Packed_backend) packed queries in
  T.set_enabled false;
  let json = T.to_chrome_json () in
  let spans = T.spans () in
  T.reset ();
  (* the export must parse back (integral floats legitimately reparse as
     ints, so structural equality is not required) *)
  (match Jsonx.parse (Jsonx.to_string json) with
  | Error e -> Alcotest.failf "chrome JSON does not parse: %s" e
  | Ok _ -> ());
  match json with
  | Jsonx.List events ->
    let phase e =
      match Jsonx.member "ph" e with Some (Jsonx.String s) -> s | _ -> "missing"
    in
    let completes = List.filter (fun e -> phase e = "X") events in
    let metas = List.filter (fun e -> phase e = "M") events in
    Alcotest.(check int) "one X event per span" (List.length spans) (List.length completes);
    Alcotest.(check bool) "metadata events name the tracks" true (List.length metas >= 2);
    List.iter
      (fun e ->
        List.iter
          (fun key ->
            Alcotest.(check bool)
              (Printf.sprintf "X event has %s" key)
              true
              (Option.is_some (Jsonx.member key e)))
          [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
        (* ts is normalized to the first span: non-negative microseconds *)
        match Jsonx.member "ts" e with
        | Some (Jsonx.Float ts) -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
        | Some (Jsonx.Int ts) -> Alcotest.(check bool) "ts >= 0" true (ts >= 0)
        | _ -> Alcotest.fail "ts is not a number")
      completes
  | _ -> Alcotest.fail "chrome export is not a JSON array"

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and attributes" `Quick (with_trace test_nesting_and_attrs);
          Alcotest.test_case "disabled records nothing" `Quick
            (with_trace test_disabled_is_free);
          Alcotest.test_case "exception still records" `Quick
            (with_trace test_exception_still_records);
          Alcotest.test_case "drain/absorb across domains" `Quick
            (with_trace test_drain_absorb);
        ] );
      ( "batch",
        [
          Alcotest.test_case "span tree is well-formed" `Quick test_batch_span_tree;
          Alcotest.test_case "span counts are jobs-independent" `Quick
            test_span_count_determinism;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace-event JSON" `Quick test_chrome_json ] );
    ]
