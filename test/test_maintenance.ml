open Qc_cube
module T = Qc_core.Qc_tree
module M = Qc_core.Maintenance

let point_opt t c = Result.to_option (Qc_core.Query.point_result t c)

(* Configurations: a base table plus a delta. *)
let maint_config =
  QCheck.make
    ~print:(fun (d, c, r, dr, s) ->
      Printf.sprintf "dims=%d card=%d rows=%d drows=%d seed=%d" d c r dr s)
    QCheck.Gen.(
      let* d = int_range 2 5 in
      let* c = int_range 2 4 in
      let* r = int_range 1 25 in
      let* dr = int_range 1 10 in
      let* s = int_range 0 1_000_000 in
      return (d, c, r, dr, s))

let make_tables (dims, card, rows, drows, seed) =
  let rng = Qc_util.Rng.create seed in
  let base = Helpers.random_table rng ~dims ~card ~rows () in
  let delta =
    Helpers.random_table rng ~schema:(Table.schema base) ~dims ~card ~rows:drows ()
  in
  (base, delta)

let queries_equal schema dims tree rebuilt =
  let card = Schema.cardinality schema 0 in
  let ok = ref true in
  Helpers.iter_all_cells ~dims ~card (fun cell ->
      match (point_opt tree cell, point_opt rebuilt cell) with
      | None, None -> ()
      | Some a, Some b when Agg.approx_equal a b -> ()
      | _ -> ok := false);
  !ok

(* ---------- Insertion: Theorem 2, the strong form ---------- *)

let prop_insert_identical_to_rebuild =
  Helpers.qcheck_case ~count:250
    ~name:"batch insertion yields the rebuilt tree exactly (Theorem 2)" maint_config
    (fun cfg ->
      let base, delta = make_tables cfg in
      let tree = T.of_table base in
      ignore (M.insert_batch tree ~base ~delta);
      (* insert_batch appended delta to base *)
      let rebuilt = T.of_table base in
      T.canonical_string tree = T.canonical_string rebuilt && T.validate tree = Ok ())

let prop_insert_tuplewise_query_equiv =
  Helpers.qcheck_case ~count:100
    ~name:"tuple-by-tuple insertion answers like the rebuilt tree" maint_config
    (fun ((dims, _, _, _, _) as cfg) ->
      let base, delta = make_tables cfg in
      let tree = T.of_table base in
      ignore (M.insert_tuples tree ~base ~delta);
      let rebuilt = T.of_table base in
      T.validate tree = Ok () && queries_equal (Table.schema base) dims tree rebuilt)

let test_insert_case1_duplicate_tuple () =
  (* Case 1 of Section 3.3.1: inserting a tuple equal to an existing one only
     updates measures, never changes the class structure. *)
  let base = Helpers.sales_table () in
  let tree = T.of_table base in
  let n_before = T.n_nodes tree and c_before = T.n_classes tree in
  let delta = Table.sub base [ 0 ] in
  let stats = M.insert_batch tree ~base ~delta in
  Alcotest.(check int) "no new nodes" n_before (T.n_nodes tree);
  Alcotest.(check int) "no new classes" c_before (T.n_classes tree);
  Alcotest.(check int) "nothing carved" 0 stats.carved;
  Alcotest.(check int) "nothing fresh" 0 stats.fresh;
  Alcotest.(check bool) "updates happened" true (stats.updated > 0);
  (* The cell (S1,P1,ALL) now counts the tuple twice. *)
  let schema = Table.schema base in
  match point_opt tree (Cell.parse schema [ "S1"; "P1"; "*" ]) with
  | Some a ->
    Alcotest.(check int) "count 2" 2 a.Agg.count;
    Alcotest.(check (float 1e-9)) "sum 12" 12.0 a.Agg.sum
  | None -> Alcotest.fail "query failed"

let test_insert_example3 () =
  (* Example 3: insert {(S2,P2,f), (S2,P3,f)} into the running example. *)
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  (* P3 must exist in the dictionary before parsing. *)
  let tree = T.of_table base in
  let delta = Table.create schema in
  Table.add_row delta [ "S2"; "P2"; "f" ] 3.0;
  Table.add_row delta [ "S2"; "P3"; "f" ] 6.0;
  let stats = M.insert_batch tree ~base ~delta in
  (* Figure 8: updates to the root class; splits of the P2 and S2-f classes; new
     classes for the two tuples and their generalizations. *)
  Alcotest.(check bool) "some carved" true (stats.carved > 0);
  Alcotest.(check bool) "some fresh" true (stats.fresh > 0);
  let rebuilt = T.of_table base in
  Alcotest.(check string) "identical to rebuild" (T.canonical_string rebuilt)
    (T.canonical_string tree);
  (* Figure 9 spot checks. *)
  let q vals = point_opt tree (Cell.parse schema vals) in
  (match q [ "S2"; "*"; "f" ] with
  | Some a -> Alcotest.(check int) "S2-f count 3" 3 a.Agg.count
  | None -> Alcotest.fail "S2,*,f missing");
  (match q [ "*"; "P2"; "*" ] with
  | Some a -> Alcotest.(check int) "P2 count 2" 2 a.Agg.count
  | None -> Alcotest.fail "*,P2,* missing");
  match q [ "S2"; "P3"; "*" ] with
  | Some a -> Alcotest.(check (float 1e-9)) "new class value" 6.0 a.Agg.sum
  | None -> Alcotest.fail "S2,P3,* missing"

(* ---------- Deletion ---------- *)

let delete_config =
  QCheck.make
    ~print:(fun (d, c, r, k, s) ->
      Printf.sprintf "dims=%d card=%d rows=%d k=%d seed=%d" d c r k s)
    QCheck.Gen.(
      let* d = int_range 2 5 in
      let* c = int_range 2 4 in
      let* r = int_range 2 25 in
      let* k = int_range 1 12 in
      let* s = int_range 0 1_000_000 in
      return (d, c, r, k, s))

let prop_delete_query_equiv =
  Helpers.qcheck_case ~count:250
    ~name:"batch deletion answers exactly like the rebuilt tree" delete_config
    (fun (dims, card, rows, k, seed) ->
      let rng = Qc_util.Rng.create seed in
      let base = Helpers.random_table rng ~dims ~card ~rows () in
      let k = min k (Table.n_rows base) in
      let idxs = Array.init (Table.n_rows base) Fun.id in
      Qc_util.Rng.shuffle rng idxs;
      let delta = Table.sub base (Array.to_list (Array.sub idxs 0 k)) in
      let tree = T.of_table base in
      let new_base, _ = M.delete_batch tree ~base ~delta in
      let rebuilt = T.of_table new_base in
      T.validate tree = Ok ()
      && queries_equal (Table.schema base) dims tree rebuilt
      && T.n_classes tree = T.n_classes rebuilt
      && T.n_nodes tree = T.n_nodes rebuilt)

let test_delete_example4 () =
  (* Example 4: base {(S1,P1,s),(S1,P2,s),(S2,P1,f),(S2,P2,f),(S2,P3,f)},
     delete {(S2,P2,f),(S2,P3,f)} — merges (S2,*,f) into (S2,P1,f) and
     the P2 class into (S1,P2,s). *)
  let schema = Schema.create ~measure_name:"Sale" [ "Store"; "Product"; "Season" ] in
  let base = Table.create schema in
  Table.add_row base [ "S1"; "P1"; "s" ] 6.0;
  Table.add_row base [ "S1"; "P2"; "s" ] 12.0;
  Table.add_row base [ "S2"; "P1"; "f" ] 9.0;
  Table.add_row base [ "S2"; "P2"; "f" ] 3.0;
  Table.add_row base [ "S2"; "P3"; "f" ] 6.0;
  let delta = Table.sub base [ 3; 4 ] in
  let tree = T.of_table base in
  let new_base, stats = M.delete_batch tree ~base ~delta in
  Alcotest.(check int) "3 rows left" 3 (Table.n_rows new_base);
  Alcotest.(check bool) "classes merged" true (stats.merged >= 2);
  let rebuilt = T.of_table new_base in
  Alcotest.(check bool) "query equivalent" true (queries_equal schema 3 tree rebuilt);
  (* The merge adds the paper's link: the P2 cell now answers via (S1,P2,s). *)
  match point_opt tree (Cell.parse schema [ "*"; "P2"; "*" ]) with
  | Some a -> Alcotest.(check (float 1e-9)) "P2 avg 12" 12.0 (Agg.value Agg.Avg a)
  | None -> Alcotest.fail "(*,P2,*) lost"

let test_delete_everything () =
  let base = Helpers.sales_table () in
  let delta = Table.copy base in
  let tree = T.of_table base in
  let new_base, stats = M.delete_batch tree ~base ~delta in
  Alcotest.(check int) "empty base" 0 (Table.n_rows new_base);
  Alcotest.(check int) "no classes left" 0 (T.n_classes tree);
  Alcotest.(check int) "only root remains" 1 (T.n_nodes tree);
  Alcotest.(check bool) "classes removed" true (stats.removed > 0)

let test_delete_missing_row_rejected () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let delta = Table.create schema in
  Table.add_row delta [ "S1"; "P1"; "s" ] 999.0;
  let tree = T.of_table base in
  Alcotest.check_raises "missing row"
    (Invalid_argument "Maintenance.delete_batch: delta row not present in base") (fun () ->
      ignore (M.delete_batch tree ~base ~delta))

let test_insert_then_delete_roundtrip () =
  (* Inserting a delta and deleting it again restores query behaviour. *)
  let cfg = (3, 3, 12, 5, 777) in
  let base, delta = make_tables cfg in
  let original = T.of_table base in
  let tree = T.of_table base in
  let work = Table.copy base in
  ignore (M.insert_batch tree ~base:work ~delta);
  let restored, _ = M.delete_batch tree ~base:work ~delta in
  Alcotest.(check int) "row count restored" (Table.n_rows base) (Table.n_rows restored);
  Alcotest.(check bool) "queries restored" true
    (queries_equal (Table.schema base) 3 tree original)

let test_min_max_after_delete () =
  (* MIN/MAX must be recomputed when the deleted tuple held the bound. *)
  let schema = Schema.create [ "A"; "B" ] in
  let base = Table.create schema in
  Table.add_row base [ "a1"; "b1" ] 100.0;
  Table.add_row base [ "a1"; "b2" ] 1.0;
  Table.add_row base [ "a1"; "b3" ] 50.0;
  let delta = Table.sub base [ 0 ] in
  let tree = T.of_table base in
  let _, _ = M.delete_batch tree ~base ~delta in
  match point_opt tree (Cell.parse schema [ "a1"; "*" ]) with
  | Some a ->
    Alcotest.(check (float 1e-9)) "max recomputed" 50.0 a.Agg.max;
    Alcotest.(check (float 1e-9)) "min kept" 1.0 a.Agg.min;
    Alcotest.(check int) "count" 2 a.Agg.count
  | None -> Alcotest.fail "query failed"

let prop_insert_stats_consistent =
  Helpers.qcheck_case ~count:100 ~name:"insertion stats count every processed bound"
    maint_config (fun cfg ->
      let base, delta = make_tables cfg in
      let tree = T.of_table base in
      let stats = M.insert_batch tree ~base ~delta in
      stats.located >= stats.updated + stats.carved + stats.fresh
      && stats.fresh + stats.carved + stats.updated > 0)

let test_empty_deltas () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let tree = T.of_table base in
  let before = T.canonical_string tree in
  let empty = Table.create schema in
  let stats = M.insert_batch tree ~base ~delta:empty in
  Alcotest.(check int) "no rows" 3 (Table.n_rows base);
  Alcotest.(check int) "no updates" 0 (stats.updated + stats.carved + stats.fresh);
  let _, dstats = M.delete_batch tree ~base ~delta:empty in
  Alcotest.(check int) "no removals" 0 dstats.removed;
  Alcotest.(check string) "tree untouched" before (T.canonical_string tree)

let test_insert_into_empty_warehouse () =
  let schema = Schema.create [ "A"; "B" ] in
  let base = Table.create schema in
  let tree = T.of_table base in
  let delta = Table.create schema in
  Table.add_row delta [ "a"; "b" ] 1.0;
  Table.add_row delta [ "a"; "c" ] 2.0;
  ignore (M.insert_batch tree ~base ~delta);
  let rebuilt = T.of_table base in
  Alcotest.(check string) "identical" (T.canonical_string rebuilt) (T.canonical_string tree)

let test_duplicate_rows_multiset_delete () =
  (* Two identical rows; deleting one leaves the other. *)
  let schema = Schema.create [ "A" ] in
  let base = Table.create schema in
  Table.add_row base [ "x" ] 5.0;
  Table.add_row base [ "x" ] 5.0;
  let tree = T.of_table base in
  let delta = Table.sub base [ 0 ] in
  let new_base, _ = M.delete_batch tree ~base ~delta in
  Alcotest.(check int) "one left" 1 (Table.n_rows new_base);
  match point_opt tree (Cell.parse schema [ "x" ]) with
  | Some a ->
    Alcotest.(check int) "count 1" 1 a.Agg.count;
    Alcotest.(check (float 1e-9)) "sum 5" 5.0 a.Agg.sum
  | None -> Alcotest.fail "remaining row lost"

let () =
  Alcotest.run "qc_maintenance"
    [
      ( "insertion",
        [
          prop_insert_identical_to_rebuild;
          prop_insert_tuplewise_query_equiv;
          prop_insert_stats_consistent;
          Alcotest.test_case "case 1: duplicate tuple" `Quick test_insert_case1_duplicate_tuple;
          Alcotest.test_case "Example 3 (batch update)" `Quick test_insert_example3;
        ] );
      ( "deletion",
        [
          prop_delete_query_equiv;
          Alcotest.test_case "Example 4 (merge)" `Quick test_delete_example4;
          Alcotest.test_case "delete everything" `Quick test_delete_everything;
          Alcotest.test_case "missing row rejected" `Quick test_delete_missing_row_rejected;
          Alcotest.test_case "min/max repair" `Quick test_min_max_after_delete;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty deltas" `Quick test_empty_deltas;
          Alcotest.test_case "insert into empty warehouse" `Quick test_insert_into_empty_warehouse;
          Alcotest.test_case "duplicate-row multiset delete" `Quick test_duplicate_rows_multiset_delete;
        ] );
      ( "composition",
        [ Alcotest.test_case "insert then delete roundtrip" `Quick test_insert_then_delete_roundtrip ]
      );
    ]
