#!/usr/bin/env bash
# Golden contract tests for qclint: every rule has an offending fixture
# (exit 2, exact label reported) and a clean twin (exit 0) — so deleting any
# single rule's implementation fails at least one case here.  Each case
# copies its fixture into a throwaway mini-repo tree at the destination path
# the rule's scoping cares about (the same file can be a violation at
# lib/util/other.ml and sanctioned at lib/util/durable.ml), then runs
# `qclint --root <tree>`.  The CLI contract (exit 0/2/124, --json envelope,
# --fix-dry-run, allowlist semantics) is asserted at the end.
set -u

QCLINT="$1"
FIXTURES="$(dirname "$0")/fixtures"
fails=0
cases=0

tree=""
new_tree() {
  tree="$(mktemp -d "./faketree.XXXXXX")"
}

place() { # fixture dest-relpath
  mkdir -p "$tree/$(dirname "$2")"
  cp "$FIXTURES/$1" "$tree/$2"
}

run_lint() { # extra args...
  "$QCLINT" --root "$tree" "$@" >out.txt 2>err.txt
  code=$?
}

check_exit() { # name want
  cases=$((cases + 1))
  if [ "$code" -ne "$2" ]; then
    echo "FAIL: $1 exited $code, expected $2" >&2
    sed 's/^/  out: /' out.txt >&2
    sed 's/^/  err: /' err.txt >&2
    fails=$((fails + 1))
  fi
}

check_out() { # name pattern
  cases=$((cases + 1))
  if ! grep -q "$2" out.txt; then
    echo "FAIL: $1 output does not match '$2'" >&2
    sed 's/^/  out: /' out.txt >&2
    fails=$((fails + 1))
  fi
}

check_not_out() { # name pattern
  cases=$((cases + 1))
  if grep -q "$2" out.txt; then
    echo "FAIL: $1 output unexpectedly matches '$2'" >&2
    sed 's/^/  out: /' out.txt >&2
    fails=$((fails + 1))
  fi
}

bad() { # rule fixture dest
  new_tree
  place "$2" "$3"
  run_lint
  check_exit "bad[$1] at $3" 2
  check_out "bad[$1] at $3" "\[$1\]"
}

ok() { # label fixture dest
  new_tree
  place "$2" "$3"
  run_lint
  check_exit "ok[$1] at $3" 0
  check_out "ok[$1] at $3" "OK"
}

# --- one bad fixture + one clean twin per rule ------------------------------

bad parse-error        parse_error_bad.ml     lib/util/broken.ml
ok  parse-error        parse_error_ok.ml      lib/util/broken.ml
# interfaces are parsed too: the same garbage as an .mli must also be caught
new_tree
place parse_error_bad.ml lib/util/broken.mli
run_lint
check_exit "bad[parse-error] .mli" 2
check_out "bad[parse-error] .mli" "interface does not"

bad obj-magic          obj_magic_bad.ml       lib/util/fixture.ml
ok  obj-magic          obj_magic_ok.ml        lib/util/fixture.ml

bad raising-find       raising_find_bad.ml    lib/util/fixture.ml
ok  raising-find       raising_find_ok.ml     lib/util/fixture.ml

bad poly-compare       poly_compare_bad.ml    lib/util/fixture.ml
ok  poly-compare       poly_compare_ok.ml     lib/util/fixture.ml

bad option-poly-eq     option_poly_eq_bad.ml  lib/util/fixture.ml
ok  option-poly-eq     option_poly_eq_ok.ml   lib/util/fixture.ml

# scoping rules: the clean twin is the SAME file at the sanctioned path
bad durable-raw-write  durable_raw_write_bad.ml lib/util/fixture.ml
ok  durable-raw-write  durable_raw_write_bad.ml lib/util/durable.ml

bad clock-raw-time     clock_raw_time_bad.ml  lib/util/fixture.ml
ok  clock-raw-time     clock_raw_time_bad.ml  lib/util/clock.ml

bad stdout-in-lib      stdout_in_lib_bad.ml   lib/util/fixture.ml
ok  stdout-in-lib      stdout_in_lib_bad.ml   bin/fixture.ml

bad catch-all-handler  catch_all_bad.ml       lib/util/fixture.ml
ok  catch-all-handler  catch_all_ok.ml        lib/util/fixture.ml
# outside lib/ and bin/ the handler rule does not apply (tests may swallow)
ok  catch-all-scope    catch_all_bad.ml       test/fixture.ml

bad typed-error-bypass typed_error_bypass_bad.ml lib/qc/engine.ml
ok  typed-error-bypass typed_error_bypass_ok.ml  lib/qc/engine.ml
# the same panic in a module with no typed error channel is not this rule
ok  typed-error-scope  typed_error_bypass_bad.ml lib/util/fixture.ml

bad domain-outside-allowlist domain_bad.ml    lib/qc/query.ml
ok  domain-outside-allowlist domain_bad.ml    lib/qc/engine.ml
# the query server spawns its own audited domains
ok  domain-server-scope      domain_bad.ml    lib/server/server.ml

bad deprecated-query-api deprecated_query_bad.ml lib/util/fixture.ml
ok  deprecated-query-api deprecated_query_ok.ml  lib/util/fixture.ml
# inside the defining module the wrappers may mention themselves
ok  deprecated-query-scope deprecated_query_bad.ml lib/qc/query.ml
# all three deprecated spellings (direct, aliased, fully qualified) fire
new_tree
place deprecated_query_bad.ml lib/util/fixture.ml
run_lint
check_out "deprecated-query-api flags all three spellings" "3 violation(s)"

bad toplevel-mutable-state toplevel_state_bad.ml lib/util/fixture.ml
ok  toplevel-mutable-state toplevel_state_ok.ml  lib/util/fixture.ml

bad dls-without-drain  dls_bad.ml             lib/util/fixture.ml
ok  dls-without-drain  dls_ok.ml              lib/util/fixture.ml

# the three bad cases above that flagged >1 site: make sure counts agree
new_tree
place catch_all_bad.ml lib/util/fixture.ml
run_lint
check_out "catch-all flags all three shapes" "3 violation(s)"

# --- allowlist semantics ----------------------------------------------------

# an entry absolves exactly (count N) sites of its rule in its file
new_tree
place obj_magic_bad.ml lib/util/fixture.ml
cat > "$tree/allow.sexp" <<'EOF'
((rule obj-magic) (file lib/util/fixture.ml) (count 2)
 (justification "fixture: both casts are sanctioned here"))
EOF
run_lint --allow "$tree/allow.sexp"
check_exit "allowlisted sites pass" 0
check_out "allowlisted count reported" "(2 allowlisted)"

# an entry matching nothing is itself a violation: dangling-allow-entry
new_tree
place obj_magic_ok.ml lib/util/fixture.ml
cat > "$tree/allow.sexp" <<'EOF'
((rule obj-magic) (file lib/util/fixture.ml)
 (justification "fixture: the site this justified is gone"))
EOF
run_lint --allow "$tree/allow.sexp"
check_exit "dangling allow entry fails" 2
check_out "dangling allow entry labelled" "\[dangling-allow-entry\]"

# --check-allowlist: same verdict, entry-oriented report
run_lint --allow "$tree/allow.sexp" --check-allowlist
check_exit "check-allowlist flags dangling" 2
check_out "check-allowlist names the entry" "obj-magic"

# a malformed allowlist is a runtime failure (exit 1), not a violation
cat > "$tree/allow.sexp" <<'EOF'
((rule no-such-rule) (file x.ml) (justification "bad"))
EOF
run_lint --allow "$tree/allow.sexp"
check_exit "unknown rule in allowlist" 1

cat > "$tree/allow.sexp" <<'EOF'
((rule obj-magic) (file x.ml) (justification ""))
EOF
run_lint --allow "$tree/allow.sexp"
check_exit "empty justification in allowlist" 1

# --- CLI contract -----------------------------------------------------------

# clean tree: exit 0 and a summary
new_tree
place obj_magic_ok.ml lib/util/fixture.ml
run_lint
check_exit "clean tree" 0
check_out "clean summary" "0 violations"

# --json on a clean tree: ok:true, empty violations array
run_lint --json
check_exit "clean --json" 0
check_out "clean --json ok" '"ok":true'
check_out "clean --json empty" '"violations":\[\]'

# --json on a violating tree: the shared {label, file_or_path, detail}
# envelope, same as qct check --json / qct recover --json
new_tree
place raising_find_bad.ml lib/util/fixture.ml
run_lint --json
check_exit "violating --json" 2
check_out "--json tool field" '"tool":"qclint"'
check_out "--json ok:false" '"ok":false'
check_out "--json label" '"label":"raising-find"'
check_out "--json file_or_path" '"file_or_path":"lib/util/fixture.ml"'
check_out "--json detail has location" '"detail":"lib/util/fixture.ml:[0-9]*:[0-9]*:'

# --fix-dry-run lists mechanically fixable sites and always exits 0
run_lint --fix-dry-run
check_exit "--fix-dry-run exits 0 despite violations" 0
check_out "--fix-dry-run lists the find_opt fix" "find_opt"
check_out "--fix-dry-run counts sites" "2 mechanically fixable site(s)"

# a clean tree has nothing to fix
new_tree
place obj_magic_ok.ml lib/util/fixture.ml
run_lint --fix-dry-run
check_exit "--fix-dry-run on clean tree" 0
check_out "--fix-dry-run zero sites" "0 mechanically fixable site(s)"

# explicit file arguments are taken relative to --root so scoping applies
new_tree
place stdout_in_lib_bad.ml lib/util/fixture.ml
place obj_magic_bad.ml bin/fixture.ml
run_lint lib/util/fixture.ml
check_exit "positional file" 2
check_out "positional file flags its own rule" "\[stdout-in-lib\]"
check_not_out "positional file skips unlisted files" "\[obj-magic\]"

# usage errors: unknown flag is 124, bad paths are runtime failures (1)
"$QCLINT" --bogus >out.txt 2>err.txt
code=$?
check_exit "unknown flag" 124
"$QCLINT" --root ./no-such-dir >out.txt 2>err.txt
code=$?
check_exit "missing root" 1
new_tree
"$QCLINT" --root "$tree" --allow ./no-such-allow.sexp >out.txt 2>err.txt
code=$?
check_exit "missing allowlist" 1

# --rules lists every registered rule (the fixture suite's own contract)
"$QCLINT" --rules >out.txt 2>err.txt
code=$?
check_exit "--rules" 0
for rule in parse-error obj-magic raising-find poly-compare option-poly-eq \
            durable-raw-write clock-raw-time stdout-in-lib catch-all-handler \
            typed-error-bypass domain-outside-allowlist toplevel-mutable-state \
            dls-without-drain dangling-allow-entry; do
  check_out "--rules lists $rule" "^$rule "
done

rm -rf ./faketree.* out.txt err.txt

if [ "$fails" -gt 0 ]; then
  echo "qclint contract: $fails of $cases checks FAILED" >&2
  exit 1
fi
echo "qclint contract: all $cases checks passed"
