(* clean twin of option_poly_eq_bad.ml *)
let is_empty x = Option.is_none x

let is_filled x = Option.is_some x
