(* clean twin of dls_bad.ml: the buffer ships with its drain/absorb pair,
   the discipline Metrics and Trace follow *)
let buffer = Domain.DLS.new_key (fun () -> [])

let record x = Domain.DLS.set buffer (x :: Domain.DLS.get buffer)

let drain () =
  let v = Domain.DLS.get buffer in
  Domain.DLS.set buffer [];
  v

let absorb delta = Domain.DLS.set buffer (delta @ Domain.DLS.get buffer)
