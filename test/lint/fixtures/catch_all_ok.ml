(* clean twin of catch_all_bad.ml: specific exceptions, and a capture that
   faithfully re-raises is not a swallow *)
let specific g = try g () with Not_found -> 0

let logged g =
  try g ()
  with e ->
    ignore e;
    raise e

let match_specific g = match g () with x -> x | exception Exit -> 0
