(* fixture: [durable-raw-write] when placed anywhere in lib/ or bin/ except
   lib/util/durable.ml; the clean-twin run places this same file AT
   lib/util/durable.ml, where every call is sanctioned.  The alias spelling
   is one the old grep missed. *)
let write fd buf = Unix.write fd buf 0 (Bytes.length buf)

module U = Unix

let rename src dst = U.rename src dst

let spill path = open_out_bin path
