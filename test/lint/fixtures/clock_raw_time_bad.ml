(* fixture: [clock-raw-time] anywhere except lib/util/clock.ml; the clean
   twin places this same file AT lib/util/clock.ml *)
let wall () = Unix.gettimeofday ()

let cpu () = Sys.time ()
