(* fixture: [typed-error-bypass] when placed at a typed-error module
   (lib/qc/engine.ml); the clean-twin run places this same panic in a module
   with no typed error channel, where failwith is merely discouraged style *)
let lookup = function
  | Some v -> v
  | None -> failwith "empty slot"

let unreachable () = assert false
