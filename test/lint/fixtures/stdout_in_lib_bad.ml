(* fixture: [stdout-in-lib] when placed under lib/; the clean twin places
   this same file under bin/, where printing is the whole point *)
let banner () = print_endline "qc-tree"

let stats n = Printf.printf "%d nodes\n" n
