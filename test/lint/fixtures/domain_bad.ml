(* fixture: [domain-outside-allowlist] when placed outside
   lib/qc/engine.ml / lib/qc/shard.ml; the clean-twin run places this same
   file AT lib/qc/engine.ml, the audited executor *)
let run f = Domain.join (Domain.spawn f)
