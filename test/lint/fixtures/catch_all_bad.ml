(* fixture: [catch-all-handler] — the wildcard, a named capture that never
   re-raises, and the [match ... with exception _] disguise *)
let swallow_any g = try g () with _ -> 0

let swallow_named g = try g () with e -> ignore e; 0

let swallow_match g = match g () with x -> x | exception _ -> 0
