(* clean twin of typed_error_bypass_bad.ml for lib/qc/engine.ml: the typed
   channel carries the condition *)
type ('a, 'e) result2 = Ok2 of 'a | Err2 of 'e

let lookup = function
  | Some v -> Ok2 v
  | None -> Err2 "empty slot"
