(* fixture: [raising-find] — the direct call and a module-alias spelling a
   grep would miss *)
let direct l = List.assoc "k" l

module H = Hashtbl

let aliased t = H.find t "k"
