(* fixture: [poly-compare] — bare and Stdlib-qualified, which the old grep
   missed *)
let c a b = compare a b

let d a b = Stdlib.compare a b
