(* clean twin of obj_magic_bad.ml: the identity needs no magic *)
let f x = x

let g x = x
