(* clean twin of poly_compare_bad.ml: typed comparisons, plus a file-local
   [compare] binding that legitimately shadows the polymorphic one *)
let c a b = Int.compare a b

let d a b = String.compare a b

let shadowed compare a b = compare a b
