(* clean twin of raising_find_bad.ml: the _opt forms with explicit branches *)
let direct l = match List.assoc_opt "k" l with Some v -> v | None -> 0

module H = Hashtbl

let aliased t = match H.find_opt t "k" with Some v -> v | None -> 0
