(* clean twin of toplevel_state_bad.ml: the same state with a declared
   concurrency story (a Mutex guarding every access) *)
let lock = Mutex.create ()

let counter = ref 0

let cache = Hashtbl.create 16

let bump () = Mutex.protect lock (fun () -> incr counter)
