(* fixture: [option-poly-eq] — both polarities, one split across lines *)
let is_empty x = x = None

let is_filled x =
  x
  <> None
