(* fixture: [deprecated-query-api] — the option-returning wrappers, in
   their qualified, aliased and packed spellings; the clean-twin run
   places this same file AT lib/qc/query.ml, the defining module *)
module Q = Qc_core.Query

let a tree cell = Query.point tree cell

let b tree cell = Q.point_value tree Agg.Sum cell

let c packed r = Qc_core.Query.range_packed packed r
