(* fixture: does not parse — qclint must report [parse-error], not crash *)
let broken = (
