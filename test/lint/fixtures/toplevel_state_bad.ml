(* fixture: [toplevel-mutable-state] — structure-level ref and Hashtbl in
   lib/ with no Mutex/Atomic/DLS anywhere in the file *)
let counter = ref 0

let cache = Hashtbl.create 16

let bump () = incr counter
