(* clean twin of deprecated_query_bad.ml: the *_result forms carry the
   typed error instead of collapsing it into None *)
module Q = Qc_core.Query

let a tree cell = Query.point_result tree cell

let b tree cell = Q.point_value_result tree Agg.Sum cell

let c packed r = Qc_core.Query.range_result_packed packed r
