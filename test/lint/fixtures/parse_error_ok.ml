(* clean twin of parse_error_bad.ml *)
let fine = 1
