(* fixture: [dls-without-drain] — a per-domain buffer that no drain/absorb
   pair can ever merge back deterministically *)
let buffer = Domain.DLS.new_key (fun () -> [])

let record x = Domain.DLS.set buffer (x :: Domain.DLS.get buffer)
