(* fixture: [obj-magic] — including the qualified Stdlib spelling *)
let f x = Obj.magic x

let g x = Stdlib.Obj.magic x
