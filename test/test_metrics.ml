open Qc_util

(* The registry is global; every test starts from a clean, disabled state. *)
let fresh () =
  Metrics.reset ();
  Metrics.set_enabled true

let teardown () = Metrics.set_enabled false

let with_metrics f () =
  fresh ();
  Fun.protect ~finally:teardown f

(* the raising List.assoc would surface a missing name as an uncaught
   Not_found far from the bug (qclint: raising-find); fail by name instead *)
let hist name s =
  match List.assoc_opt name s.Metrics.histograms with
  | Some h -> h
  | None -> Alcotest.failf "no histogram %S in the snapshot" name

let test_counter_math () =
  let c = Metrics.counter "t.counter_math" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "incr and add" 42 (Metrics.value c);
  let c' = Metrics.counter "t.counter_math" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same counter" 43 (Metrics.value c)

let test_disabled_is_inert () =
  let c = Metrics.counter "t.disabled" in
  let h = Metrics.histogram "t.disabled_hist" in
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe h 3;
  Alcotest.(check int) "counter unchanged" 0 (Metrics.value c);
  let s = Metrics.snapshot () in
  Alcotest.(check int) "histogram unchanged" 0
    (hist "t.disabled_hist" s).Metrics.total

let test_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1; 2; 4 |] "t.hist" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  let s = hist "t.hist" (Metrics.snapshot ()) in
  Alcotest.(check (array int)) "bounds" [| 1; 2; 4 |] s.Metrics.bounds;
  (* <=1: {0,1}  <=2: {2}  <=4: {3,4}  overflow: {5,100} *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 2; 2 |] s.Metrics.counts;
  Alcotest.(check int) "total" 7 s.Metrics.total;
  Alcotest.(check int) "sum" 115 s.Metrics.sum;
  Alcotest.(check int) "max" 100 s.Metrics.max_value

let test_histogram_validation () =
  Alcotest.check_raises "empty buckets"
    (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram ~buckets:[||] "t.bad_empty"));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing") (fun () ->
      ignore (Metrics.histogram ~buckets:[| 3; 3 |] "t.bad_order"));
  ignore (Metrics.histogram ~buckets:[| 1; 2 |] "t.conflict");
  Alcotest.check_raises "re-registration with different buckets"
    (Invalid_argument "Metrics.histogram: \"t.conflict\" already registered with different buckets")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 1; 3 |] "t.conflict"))

let test_reset () =
  let c = Metrics.counter "t.reset_c" in
  let h = Metrics.histogram "t.reset_h" in
  Metrics.incr c;
  Metrics.observe h 7;
  Metrics.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.value c);
  let s = hist "t.reset_h" (Metrics.snapshot ()) in
  Alcotest.(check int) "histogram zeroed" 0 s.Metrics.total;
  Alcotest.(check int) "max zeroed" 0 s.Metrics.max_value;
  Alcotest.(check (array int)) "counts zeroed"
    (Array.make (Array.length s.Metrics.bounds + 1) 0)
    s.Metrics.counts

let test_snapshot_sorted () =
  Metrics.incr (Metrics.counter "t.zz");
  Metrics.incr (Metrics.counter "t.aa");
  let names = List.map fst (Metrics.snapshot ()).counters in
  Alcotest.(check (list string)) "sorted by name" (List.sort String.compare names) names

let test_json_roundtrip () =
  let c = Metrics.counter "t.json_c" in
  let h = Metrics.histogram ~buckets:[| 2; 8 |] "t.json_h" in
  Metrics.add c 5;
  List.iter (Metrics.observe h) [ 1; 4; 9 ];
  let json = Metrics.to_json () in
  let str = Jsonx.to_string json in
  (match Jsonx.parse str with
  | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e
  | Ok reparsed ->
    Alcotest.(check bool) "round-trips structurally" true (Jsonx.equal json reparsed);
    let counter_v =
      Option.bind (Jsonx.member "counters" reparsed) (Jsonx.member "t.json_c")
    in
    Alcotest.(check bool) "counter value survives" true (counter_v = Some (Jsonx.Int 5));
    let hist =
      Option.bind (Jsonx.member "histograms" reparsed) (Jsonx.member "t.json_h")
    in
    (match Option.bind hist (Jsonx.member "counts") with
    | Some (Jsonx.List [ Jsonx.Int 1; Jsonx.Int 1; Jsonx.Int 1 ]) -> ()
    | other -> Alcotest.failf "unexpected counts: %s"
        (match other with Some j -> Jsonx.to_string j | None -> "absent")));
  (* pretty rendering is also valid JSON *)
  match Jsonx.parse (Jsonx.to_string_pretty json) with
  | Ok v -> Alcotest.(check bool) "pretty form parses equal" true (Jsonx.equal json v)
  | Error e -> Alcotest.failf "pretty JSON does not parse: %s" e

(* Worker domains drain their per-domain cells; the coordinator absorbs the
   deltas, ending with exactly the totals a single-domain run would have. *)
let test_drain_absorb () =
  let c = Metrics.counter "t.par_c" in
  let h = Metrics.histogram ~buckets:[| 2; 8 |] "t.par_h" in
  Metrics.add c 5;
  Metrics.observe h 1;
  let deltas =
    Array.init 3 (fun k ->
        Domain.spawn (fun () ->
            Metrics.add c (10 * (k + 1));
            Metrics.observe h (3 * (k + 1));
            Metrics.drain ()))
    |> Array.map Domain.join
  in
  Alcotest.(check int) "worker work is invisible before absorb" 5 (Metrics.value c);
  Array.iter Metrics.absorb deltas;
  Alcotest.(check int) "counter totals merge" (5 + 10 + 20 + 30) (Metrics.value c);
  let s = hist "t.par_h" (Metrics.snapshot ()) in
  (* observed 1, 3, 6, 9 -> <=2: {1}  <=8: {3,6}  overflow: {9} *)
  Alcotest.(check (array int)) "bucket counts merge" [| 1; 2; 1 |] s.Metrics.counts;
  Alcotest.(check int) "total merges" 4 s.Metrics.total;
  Alcotest.(check int) "sum merges" 19 s.Metrics.sum;
  Alcotest.(check int) "max merges" 9 s.Metrics.max_value;
  (* drain really zeroes: a second drain of this domain carries nothing *)
  let d = Metrics.drain () in
  Metrics.absorb d;
  Alcotest.(check int) "drain+absorb is idempotent on totals" 65 (Metrics.value c)

(* Independently written nearest-rank oracle: sort a copy of the raw
   samples and take the smallest value with at least ceil(p/100 * n)
   observations at or below it. *)
let oracle_percentile samples p =
  match samples with
  | [] -> 0
  | _ ->
    let a = Array.of_list samples in
    Array.sort Int.compare a;
    let n = Array.length a in
    let rank = max 1 (min n (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)))) in
    a.(rank - 1)

let test_percentiles_oracle () =
  (* deterministic LCG so the test needs no Random state *)
  let state = ref 123456789 in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  List.iteri
    (fun case n ->
      let name = Printf.sprintf "t.pct_%d" case in
      let h = Metrics.histogram ~buckets:[| 8; 64; 512 |] name in
      let samples = List.init n (fun _ -> next 1000) in
      List.iter (Metrics.observe h) samples;
      let s = hist name (Metrics.snapshot ()) in
      List.iter
        (fun (p, got) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: p%.0f over %d samples" name p n)
            (oracle_percentile samples p) got)
        [ (50.0, s.Metrics.p50); (90.0, s.Metrics.p90); (99.0, s.Metrics.p99) ])
    [ 0; 1; 2; 3; 5; 10; 42; 99; 100; 101; 1000 ]

(* Retained samples travel through drain/absorb, so a parallel run's
   percentiles equal the sequential ones exactly. *)
let test_percentiles_parallel () =
  let h = Metrics.histogram ~buckets:[| 8; 64 |] "t.pct_par" in
  let chunks = List.init 4 (fun k -> List.init 25 (fun i -> ((k * 37) + (i * 13)) mod 200)) in
  List.iter (List.iter (Metrics.observe h)) chunks;
  let seq = hist "t.pct_par" (Metrics.snapshot ()) in
  Metrics.reset ();
  let deltas =
    List.map
      (fun c ->
        Domain.spawn (fun () ->
            List.iter (Metrics.observe h) c;
            Metrics.drain ()))
      chunks
    |> List.map Domain.join
  in
  List.iter Metrics.absorb deltas;
  let par = hist "t.pct_par" (Metrics.snapshot ()) in
  Alcotest.(check int) "p50 matches sequential" seq.Metrics.p50 par.Metrics.p50;
  Alcotest.(check int) "p90 matches sequential" seq.Metrics.p90 par.Metrics.p90;
  Alcotest.(check int) "p99 matches sequential" seq.Metrics.p99 par.Metrics.p99;
  Alcotest.(check int) "total matches sequential" seq.Metrics.total par.Metrics.total

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_prometheus () =
  let c = Metrics.counter "t.prom_c" in
  let h = Metrics.histogram ~buckets:[| 2; 8 |] "t.prom.h" in
  Metrics.add c 7;
  List.iter (Metrics.observe h) [ 1; 3; 9 ];
  let out = Metrics.to_prometheus () in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" sub) true
        (contains ~sub out))
    [
      (* counters carry the conventional _total suffix; nothing else does *)
      "# TYPE qc_t_prom_c_total counter\nqc_t_prom_c_total 7\n";
      "# TYPE qc_t_prom_h histogram\n";
      (* buckets are cumulative: <=2 holds {1}, <=8 adds {3}, +Inf adds {9} *)
      "qc_t_prom_h_bucket{le=\"2\"} 1\n";
      "qc_t_prom_h_bucket{le=\"8\"} 2\n";
      "qc_t_prom_h_bucket{le=\"+Inf\"} 3\n";
      "qc_t_prom_h_sum 13\n";
      "qc_t_prom_h_count 3\n";
      "# TYPE qc_t_prom_h_p99 gauge\nqc_t_prom_h_p99 9\n";
    ]

let test_render () =
  Metrics.add (Metrics.counter "t.render_me") 3;
  Metrics.observe (Metrics.histogram "t.render_hist") 2;
  let out = Metrics.render () in
  Alcotest.(check bool) "counter line present" true (contains ~sub:"t.render_me" out);
  Alcotest.(check bool) "histogram line present" true (contains ~sub:"t.render_hist" out)

(* ---------- Jsonx on its own ---------- *)

let test_jsonx_escaping () =
  let v = Jsonx.(Obj [ ("k\"ey\n", String "a\\b\tc"); ("u", String "\001") ]) in
  match Jsonx.parse (Jsonx.to_string v) with
  | Ok v' -> Alcotest.(check bool) "escaped round-trip" true (Jsonx.equal v v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_jsonx_numbers () =
  let v =
    Jsonx.(
      List [ Int 0; Int (-42); Int max_int; Float 3.25; Float (-0.5); Float 1e-9; Float nan ])
  in
  match Jsonx.parse (Jsonx.to_string v) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (Jsonx.List [ a; b; c; d; e; f; g ]) ->
    Alcotest.(check bool) "int 0" true (a = Jsonx.Int 0);
    Alcotest.(check bool) "negative int" true (b = Jsonx.Int (-42));
    Alcotest.(check bool) "max_int" true (c = Jsonx.Int max_int);
    Alcotest.(check bool) "float" true (d = Jsonx.Float 3.25);
    Alcotest.(check bool) "negative float" true (e = Jsonx.Float (-0.5));
    Alcotest.(check bool) "exponent float" true (f = Jsonx.Float 1e-9);
    Alcotest.(check bool) "nan emitted as null" true (g = Jsonx.Null)
  | Ok _ -> Alcotest.fail "wrong shape"

let test_jsonx_errors () =
  let bad = [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "truex"; ""; "[1] trailing" ] in
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad;
  (* ... but whitespace and nesting are fine *)
  match Jsonx.parse "  { \"a\" : [ 1 , { \"b\" : null } , true ] }  " with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected valid input: %s" e

let () =
  Alcotest.run "metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter math" `Quick (with_metrics test_counter_math);
          Alcotest.test_case "disabled is inert" `Quick (with_metrics test_disabled_is_inert);
          Alcotest.test_case "histogram buckets" `Quick (with_metrics test_histogram_buckets);
          Alcotest.test_case "histogram validation" `Quick (with_metrics test_histogram_validation);
          Alcotest.test_case "reset" `Quick (with_metrics test_reset);
          Alcotest.test_case "snapshot sorted" `Quick (with_metrics test_snapshot_sorted);
          Alcotest.test_case "json round-trip" `Quick (with_metrics test_json_roundtrip);
          Alcotest.test_case "drain/absorb across domains" `Quick
            (with_metrics test_drain_absorb);
          Alcotest.test_case "render" `Quick (with_metrics test_render);
          Alcotest.test_case "percentiles vs sorted-array oracle" `Quick
            (with_metrics test_percentiles_oracle);
          Alcotest.test_case "percentiles: parallel == sequential" `Quick
            (with_metrics test_percentiles_parallel);
          Alcotest.test_case "prometheus exposition" `Quick (with_metrics test_prometheus);
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "escaping" `Quick test_jsonx_escaping;
          Alcotest.test_case "numbers" `Quick test_jsonx_numbers;
          Alcotest.test_case "errors" `Quick test_jsonx_errors;
        ] );
    ]
