open Qc_cube

(* ---------- Cell ---------- *)

let c a = Array.of_list a

let test_cell_rollup () =
  (* (S1,P1,s) rolls up to (S1,*,s) — paper Example 1. *)
  Alcotest.(check bool) "rolls up" true (Cell.rolls_up_to (c [ 1; 1; 1 ]) (c [ 1; 0; 1 ]));
  Alcotest.(check bool) "not reverse" false (Cell.rolls_up_to (c [ 1; 0; 1 ]) (c [ 1; 1; 1 ]));
  Alcotest.(check bool) "everything to all-*" true (Cell.rolls_up_to (c [ 1; 2; 3 ]) (c [ 0; 0; 0 ]));
  Alcotest.(check bool) "reflexive" true (Cell.rolls_up_to (c [ 1; 0; 2 ]) (c [ 1; 0; 2 ]));
  Alcotest.(check bool) "value mismatch" false (Cell.rolls_up_to (c [ 1; 1; 1 ]) (c [ 2; 0; 0 ]))

let test_cell_covers () =
  (* Cover set of (S1,*,s) is both S1-spring tuples — paper Section 2.2. *)
  Alcotest.(check bool) "covers" true (Cell.covers (c [ 1; 0; 1 ]) (c [ 1; 2; 1 ]));
  Alcotest.(check bool) "no" false (Cell.covers (c [ 1; 0; 1 ]) (c [ 2; 1; 2 ]))

let test_cell_meet () =
  Alcotest.(check (array int)) "meet keeps agreement" (c [ 1; 0; 0 ])
    (Cell.meet (c [ 1; 2; 0 ]) (c [ 1; 3; 1 ]));
  Alcotest.(check (array int)) "meet idempotent" (c [ 1; 2; 0 ])
    (Cell.meet (c [ 1; 2; 0 ]) (c [ 1; 2; 0 ]))

let test_cell_dominates () =
  Alcotest.(check bool) "dominates" true (Cell.dominates (c [ 1; 2; 3 ]) (c [ 1; 0; 3 ]));
  Alcotest.(check bool) "not" false (Cell.dominates (c [ 1; 2; 3 ]) (c [ 2; 0; 3 ]));
  Alcotest.(check bool) "all-* dominated by anything" true (Cell.dominates (c [ 5; 5 ]) (c [ 0; 0 ]))

let test_cell_orders () =
  (* Dictionary order with * first. *)
  Alcotest.(check bool) "star first" true (Cell.compare_dict (c [ 0; 1 ]) (c [ 1; 0 ]) < 0);
  Alcotest.(check bool) "rev: star last" true (Cell.compare_rev_dict (c [ 0; 1 ]) (c [ 1; 0 ]) > 0);
  Alcotest.(check int) "equal" 0 (Cell.compare_dict (c [ 1; 2 ]) (c [ 1; 2 ]))

let cell_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "%s %s"
        (String.concat "," (List.map string_of_int (Array.to_list a)))
        (String.concat "," (List.map string_of_int (Array.to_list b))))
    QCheck.Gen.(
      let* d = int_range 1 5 in
      let cell = array_size (return d) (int_range 0 3) in
      let* a = cell in
      let* b = cell in
      return (a, b))

let prop_meet_lower_bound =
  Helpers.qcheck_case ~name:"meet is a common generalization" cell_pair (fun (a, b) ->
      let m = Cell.meet a b in
      Cell.rolls_up_to a m && Cell.rolls_up_to b m)

let prop_rollup_transitive =
  Helpers.qcheck_case ~name:"roll-up is transitive via meet" cell_pair (fun (a, b) ->
      let m = Cell.meet a b in
      (* meet of (a, m) is m again: the glb is idempotent downward *)
      Cell.equal (Cell.meet a m) m)

(* ---------- Agg ---------- *)

let test_agg_basic () =
  let a = Agg.merge (Agg.of_measure 6.0) (Agg.of_measure 12.0) in
  Alcotest.(check (float 1e-9)) "avg" 9.0 (Agg.value Agg.Avg a);
  Alcotest.(check (float 1e-9)) "sum" 18.0 (Agg.value Agg.Sum a);
  Alcotest.(check (float 1e-9)) "count" 2.0 (Agg.value Agg.Count a);
  Alcotest.(check (float 1e-9)) "min" 6.0 (Agg.value Agg.Min a);
  Alcotest.(check (float 1e-9)) "max" 12.0 (Agg.value Agg.Max a)

let test_agg_empty_identity () =
  let a = Agg.of_measure 3.0 in
  Alcotest.(check Helpers.agg_testable) "left id" a (Agg.merge Agg.empty a);
  Alcotest.(check Helpers.agg_testable) "right id" a (Agg.merge a Agg.empty);
  Alcotest.(check bool) "avg of empty is nan" true (Float.is_nan (Agg.value Agg.Avg Agg.empty))

let test_agg_unmerge () =
  let ab = Agg.merge (Agg.of_measure 5.0) (Agg.of_measure 7.0) in
  let a = Agg.unmerge ab (Agg.of_measure 7.0) in
  Alcotest.(check int) "count" 1 a.Agg.count;
  Alcotest.(check (float 1e-9)) "sum" 5.0 a.Agg.sum

let test_agg_func_strings () =
  List.iter
    (fun f ->
      Alcotest.(check string) "roundtrip" (Agg.func_to_string f)
        (Agg.func_to_string (Agg.func_of_string (Agg.func_to_string f))))
    [ Agg.Count; Agg.Sum; Agg.Avg; Agg.Min; Agg.Max ]

let measures = QCheck.(list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))

let prop_agg_merge_assoc =
  Helpers.qcheck_case ~name:"merge order independent (approximately)" measures (fun ms ->
      let left = List.fold_left (fun acc m -> Agg.merge acc (Agg.of_measure m)) Agg.empty ms in
      let right =
        List.fold_right (fun m acc -> Agg.merge (Agg.of_measure m) acc) ms Agg.empty
      in
      Agg.approx_equal left right)

(* ---------- Table ---------- *)

let test_table_basics () =
  let t = Helpers.sales_table () in
  Alcotest.(check int) "rows" 3 (Table.n_rows t);
  Alcotest.(check int) "dims" 3 (Table.n_dims t);
  Alcotest.(check (float 1e-9)) "measure" 12.0 (Table.measure t 1);
  Alcotest.(check (option int)) "find row" (Some 0) (Table.find_row t (c [ 1; 1; 1 ]))

let test_table_cover_agg () =
  let t = Helpers.sales_table () in
  (* Cover of (S1,*,s) = first two tuples, AVG 9 (paper). *)
  let a = Table.cover_agg t (c [ 1; 0; 1 ]) in
  Alcotest.(check int) "count" 2 a.Agg.count;
  Alcotest.(check (float 1e-9)) "avg" 9.0 (Agg.value Agg.Avg a);
  let empty = Table.cover_agg t (c [ 2; 0; 1 ]) in
  Alcotest.(check int) "empty cover" 0 empty.Agg.count

let test_table_partition () =
  let rng = Qc_util.Rng.create 3 in
  let t = Helpers.random_table rng ~dims:3 ~card:4 ~rows:40 () in
  let idx = Table.all_indices t in
  let groups = Table.partition_by_dim t idx ~lo:0 ~hi:40 ~dim:1 in
  (* groups are contiguous, ordered, and exhaustive *)
  let total = List.fold_left (fun acc (_, lo, hi) -> acc + (hi - lo)) 0 groups in
  Alcotest.(check int) "exhaustive" 40 total;
  let values = List.map (fun (v, _, _) -> v) groups in
  Alcotest.(check (list int)) "sorted values" (List.sort Int.compare values) values;
  List.iter
    (fun (v, lo, hi) ->
      for i = lo to hi - 1 do
        Alcotest.(check int) "grouped" v (Table.tuple t idx.(i)).(1)
      done)
    groups

let test_table_remove_append () =
  let t = Helpers.sales_table () in
  let smaller = Table.remove_rows t (fun i -> i = 1) in
  Alcotest.(check int) "removed" 2 (Table.n_rows smaller);
  let delta = Table.sub t [ 1 ] in
  Table.append smaller delta;
  Alcotest.(check int) "appended" 3 (Table.n_rows smaller)

let test_table_rejects_star () =
  let t = Helpers.sales_table () in
  Alcotest.check_raises "no * in base tuples"
    (Invalid_argument "Table.add_encoded: base tuples may not contain *") (fun () ->
      Table.add_encoded t (c [ 1; 0; 1 ]) 1.0)

(* ---------- BUC ---------- *)

let naive_cube table =
  (* Ground truth by enumerating all cells and scanning covers. *)
  let dims = Table.n_dims table in
  let card = Schema.cardinality (Table.schema table) 0 in
  let cells = ref [] in
  Helpers.iter_all_cells ~dims ~card (fun cell ->
      let a = Table.cover_agg table cell in
      if a.Agg.count > 0 then cells := (Cell.copy cell, a) :: !cells);
  !cells

let test_buc_against_naive () =
  let rng = Qc_util.Rng.create 17 in
  for _ = 1 to 10 do
    let dims = 2 + Qc_util.Rng.int rng 2 in
    let card = 2 + Qc_util.Rng.int rng 2 in
    let rows = 1 + Qc_util.Rng.int rng 15 in
    let table = Helpers.random_table rng ~dims ~card ~rows () in
    let expected = naive_cube table in
    let cube = Full_cube.compute table in
    Alcotest.(check int) "cell count" (List.length expected) (Full_cube.n_cells cube);
    List.iter
      (fun (cell, truth) ->
        match Full_cube.find cube cell with
        | Some a when Agg.approx_equal a truth -> ()
        | Some a -> Alcotest.failf "wrong agg: %a vs %a" Agg.pp a Agg.pp truth
        | None -> Alcotest.fail "missing cell")
      expected
  done

let test_buc_iceberg () =
  let rng = Qc_util.Rng.create 23 in
  let table = Helpers.random_table rng ~dims:3 ~card:3 ~rows:30 () in
  let all = Full_cube.compute table in
  let iced = Full_cube.compute ~min_support:3 table in
  Alcotest.(check bool) "iceberg smaller" true (Full_cube.n_cells iced <= Full_cube.n_cells all);
  Full_cube.iter
    (fun cell agg ->
      Alcotest.(check bool) "meets support" true (agg.Agg.count >= 3);
      match Full_cube.find all cell with
      | Some a -> Alcotest.(check Helpers.agg_testable) "same agg" a agg
      | None -> Alcotest.fail "iceberg cell missing from full cube")
    iced;
  (* completeness: every full-cube cell with support >= 3 is in the iceberg *)
  Full_cube.iter
    (fun cell agg ->
      if agg.Agg.count >= 3 then
        Alcotest.(check bool) "present" true (Option.is_some (Full_cube.find iced cell)))
    all

let test_buc_empty_table () =
  let schema = Schema.create [ "A"; "B" ] in
  let table = Table.create schema in
  Alcotest.(check int) "no cells" 0 (Buc.count_cells table)

let test_buc_counts_match () =
  let rng = Qc_util.Rng.create 31 in
  let table = Helpers.random_table rng ~dims:3 ~card:3 ~rows:25 () in
  Alcotest.(check int) "count = materialized size" (Buc.count_cells table)
    (Full_cube.n_cells (Full_cube.compute table));
  Alcotest.(check int) "bytes" (Buc.cube_bytes table)
    (Full_cube.bytes (Full_cube.compute table) ~dims:3)

let () =
  Alcotest.run "qc_cube"
    [
      ( "cell",
        [
          Alcotest.test_case "roll-up" `Quick test_cell_rollup;
          Alcotest.test_case "covers" `Quick test_cell_covers;
          Alcotest.test_case "meet" `Quick test_cell_meet;
          Alcotest.test_case "dominates" `Quick test_cell_dominates;
          Alcotest.test_case "orders" `Quick test_cell_orders;
          prop_meet_lower_bound;
          prop_rollup_transitive;
        ] );
      ( "agg",
        [
          Alcotest.test_case "basic" `Quick test_agg_basic;
          Alcotest.test_case "identity" `Quick test_agg_empty_identity;
          Alcotest.test_case "unmerge" `Quick test_agg_unmerge;
          Alcotest.test_case "func strings" `Quick test_agg_func_strings;
          prop_agg_merge_assoc;
        ] );
      ( "table",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "cover agg" `Quick test_table_cover_agg;
          Alcotest.test_case "partition" `Quick test_table_partition;
          Alcotest.test_case "remove/append" `Quick test_table_remove_append;
          Alcotest.test_case "rejects *" `Quick test_table_rejects_star;
        ] );
      ( "buc",
        [
          Alcotest.test_case "matches naive cube" `Quick test_buc_against_naive;
          Alcotest.test_case "iceberg pruning" `Quick test_buc_iceberg;
          Alcotest.test_case "empty table" `Quick test_buc_empty_table;
          Alcotest.test_case "counting mode" `Quick test_buc_counts_match;
        ] );
    ]
