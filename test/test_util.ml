open Qc_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float rng 3.5 in
    if f < 0.0 || f >= 3.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int64 a) in
  let ys = List.init 32 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_dict_roundtrip () =
  let d = Dict.create ~name:"city" () in
  let c1 = Dict.encode d "tokyo" in
  let c2 = Dict.encode d "osaka" in
  let c1' = Dict.encode d "tokyo" in
  Alcotest.(check int) "stable code" c1 c1';
  Alcotest.(check bool) "distinct codes" true (c1 <> c2);
  Alcotest.(check string) "decode" "tokyo" (Dict.decode d c1);
  Alcotest.(check string) "decode" "osaka" (Dict.decode d c2);
  Alcotest.(check int) "size" 2 (Dict.size d);
  Alcotest.(check (option int)) "find known" (Some c2) (Dict.find d "osaka");
  Alcotest.(check (option int)) "find unknown" None (Dict.find d "kyoto")

let test_dict_code_zero_reserved () =
  let d = Dict.create () in
  let c = Dict.encode d "x" in
  Alcotest.(check bool) "codes start at 1" true (c >= 1);
  Alcotest.check_raises "decode 0 is invalid"
    (Invalid_argument "Dict.decode: code 0 out of range") (fun () ->
      ignore (Dict.decode d 0))

let test_dict_growth () =
  let d = Dict.create () in
  for i = 1 to 1000 do
    ignore (Dict.encode d (string_of_int i))
  done;
  Alcotest.(check int) "1000 values" 1000 (Dict.size d);
  Alcotest.(check string) "decode deep" "777" (Dict.decode d (Dict.encode d "777"))

let test_size_model () =
  Alcotest.(check int) "cells cost" ((3 * 4) + 8) (Size.bytes_of_cells ~dims:3 ~cells:1);
  Alcotest.(check int) "scaling" (100 * ((6 * 4) + 8)) (Size.bytes_of_cells ~dims:6 ~cells:100);
  Alcotest.(check bool) "mb" true (Float.abs (Size.mb (1024 * 1024) -. 1.0) < 1e-9)

let test_timer () =
  let x, dt = Qc_util.Timer.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0);
  let m = Qc_util.Timer.repeat_median 3 (fun () -> ()) in
  Alcotest.(check bool) "median non-negative" true (m >= 0.0);
  let samples = Qc_util.Timer.repeat 5 (fun () -> ()) in
  Alcotest.(check int) "repeat returns k samples" 5 (Array.length samples)

let test_timer_stats () =
  let open Qc_util.Timer in
  Alcotest.(check (float 1e-9)) "mean" 2.0 (mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev constant" 0.0 (stddev [| 4.0; 4.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.0) (stddev [| 1.0; 3.0; 5.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (median [| 3.0; 1.0; 2.0 |]);
  (* Float.compare makes the sort total: NaN sorts first, not anywhere *)
  Alcotest.(check (float 1e-9)) "median with nan" 2.0 (median [| 2.0; nan; 3.0 |]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Timer.mean: empty sample array")
    (fun () -> ignore (mean [||]))

let test_tablefmt () =
  let t = Tablefmt.create ~title:"x" ~columns:[ "a"; "b" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch with header")
    (fun () -> Tablefmt.add_row t [ "1" ]);
  Alcotest.(check string) "ratio" "12.50%" (Tablefmt.cell_ratio 0.125);
  Alcotest.(check string) "int float" "3" (Tablefmt.cell_f 3.0);
  Alcotest.(check string) "frac float" "3.1400" (Tablefmt.cell_f 3.14);
  Alcotest.(check string) "csv" "a,b\n1,2\n" (Tablefmt.to_csv t);
  let q = Tablefmt.create ~title:"quoted" ~columns:[ "x" ] in
  Tablefmt.add_row q [ "v1,v2" ];
  Alcotest.(check string) "csv quoting" "x\n\"v1,v2\"\n" (Tablefmt.to_csv q)

let () =
  Alcotest.run "qc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "dict",
        [
          Alcotest.test_case "roundtrip" `Quick test_dict_roundtrip;
          Alcotest.test_case "zero reserved" `Quick test_dict_code_zero_reserved;
          Alcotest.test_case "growth" `Quick test_dict_growth;
        ] );
      ( "size",
        [ Alcotest.test_case "cost model" `Quick test_size_model ] );
      ( "timer",
        [
          Alcotest.test_case "timing" `Quick test_timer;
          Alcotest.test_case "sample statistics" `Quick test_timer_stats;
        ] );
      ( "tablefmt",
        [ Alcotest.test_case "format" `Quick test_tablefmt ] );
    ]
