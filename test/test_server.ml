(* The qct serve daemon, exercised in-process: answers must bit-match the
   engine run directly on the same packed snapshot; malformed lines get a
   typed error without costing the connection; admission control refuses
   with one typed Overloaded line; the generation-keyed cache invalidates
   across a refreeze; a concurrent refreeze never fails a request (MVCC
   zero-downtime); and a server crashed mid-response leaves clients whole
   lines and a clean EOF — never a torn half-JSON line. *)

open Qc_cube
module W = Qc_warehouse.Warehouse
module E = Qc_core.Engine
module R = Qc_core.Request
module S = Qc_server.Server
module L = Qc_server.Loadgen
module FP = Qc_util.Failpoint
module Jx = Qc_util.Jsonx

let fresh_dir () =
  let dir = Filename.temp_file "qcserve" "" in
  Sys.remove dir;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* A saved sales warehouse directory, torn down with any failpoints. *)
let with_wh f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      FP.reset ();
      if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let w = W.create (Helpers.sales_table ()) in
      W.save w dir;
      f dir)

let with_server ?config dir f =
  let srv = S.start ?config dir in
  Fun.protect ~finally:(fun () -> ignore (S.stop srv)) (fun () -> f srv)

(* ---------- a minimal blocking client ---------- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* a hung server fails the test with a read timeout instead of wedging
     the whole suite *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close_client c = try close_out c.oc with Sys_error _ -> ()

let with_client port f =
  let c = connect port in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> f c)

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let roundtrip c line =
  send c line;
  input_line c.ic

(* Poll for an asynchronous condition (admission, watcher republish). *)
let eventually ?(timeout_s = 10.0) what pred =
  let t0 = Qc_util.Clock.now_s () in
  let rec go () =
    if pred () then ()
    else if Qc_util.Clock.now_s () -. t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let decode_response schema line =
  match Jx.parse line with
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line
  | Ok j -> (
    match R.response_of_json schema j with
    | Ok r -> r
    | Error msg -> Alcotest.failf "response does not decode (%s): %s" msg line)

(* ---------- answers match the engine on the same snapshot ---------- *)

let test_answers_match_engine () =
  with_wh @@ fun dir ->
  let packed = W.packed (W.open_dir dir) in
  let schema = Qc_core.Packed.schema packed in
  let queries =
    [
      "point *,*,*";
      "point S1,P1,s";
      "point S2,P2,*";  (* empty cover: the typed error must match too *)
      "range *,P1|P2,s";
      "iceberg sum 10";
      {|{"op":"point","cell":["S1","*","*"]}|};
    ]
  in
  with_server dir @@ fun srv ->
  with_client (S.port srv) @@ fun c ->
  List.iter
    (fun qline ->
      let direct =
        match R.of_wire schema qline with
        | Ok (R.Query q) -> R.Answer (E.run_one (module E.Packed_backend) packed q)
        | Ok _ | Error _ -> Alcotest.failf "fixture query %S did not parse" qline
      in
      let served = decode_response schema (roundtrip c qline) in
      Alcotest.(check bool)
        (Printf.sprintf "%S answered as the direct engine run" qline)
        true
        (R.response_equal direct served))
    queries;
  (* batch over the wire: one outcome per query, same engine results *)
  let served =
    decode_response schema
      (roundtrip c
         {|{"op":"batch","queries":[{"op":"point","cell":["*","*","*"]},{"op":"point","cell":["S2","P2","*"]}]}|})
  in
  let direct =
    R.Answers
      (Array.map
         (fun q -> E.run_one (module E.Packed_backend) packed q)
         [| R.Point [| 0; 0; 0 |];
            R.Point (Cell.parse schema [ "S2"; "P2"; "*" ]) |])
  in
  Alcotest.(check bool) "batch answered as the direct engine run" true
    (R.response_equal direct served)

(* ---------- protocol errors are typed and non-fatal ---------- *)

let test_bad_line_keeps_connection () =
  with_wh @@ fun dir ->
  with_server dir @@ fun srv ->
  let schema = Qc_core.Packed.schema (W.packed (W.open_dir dir)) in
  with_client (S.port srv) @@ fun c ->
  (match decode_response schema (roundtrip c "frobnicate everything") with
  | R.Answer (Error (Qc_core.Query.Bad_query _)) -> ()
  | _ -> Alcotest.fail "garbage line did not produce a typed Bad_query");
  (match decode_response schema (roundtrip c "{\"op\":17") with
  | R.Answer (Error (Qc_core.Query.Bad_query _)) -> ()
  | _ -> Alcotest.fail "bad JSON did not produce a typed Bad_query");
  (* the connection survived both *)
  match decode_response schema (roundtrip c "point *,*,*") with
  | R.Answer (Ok _) -> ()
  | _ -> Alcotest.fail "connection did not survive the bad lines"

(* ---------- admission control ---------- *)

let test_overload_refusal () =
  with_wh @@ fun dir ->
  let config = { S.default_config with S.max_clients = 1; max_pending = 1 } in
  with_server ~config dir @@ fun srv ->
  let schema = Qc_core.Packed.schema (W.packed (W.open_dir dir)) in
  let port = S.port srv in
  let c1 = connect port in
  Fun.protect ~finally:(fun () -> close_client c1) @@ fun () ->
  (* c1 is being served once it answers *)
  ignore (roundtrip c1 "stats");
  (* c2 parks in the bounded accept queue *)
  let c2 = connect port in
  Fun.protect ~finally:(fun () -> close_client c2) @@ fun () ->
  eventually "c2 queued" (fun () -> (S.stats srv).R.sv_clients = 1);
  Unix.sleepf 0.15;
  (* c3 finds the queue full: one typed refusal, then close *)
  let c3 = connect port in
  Fun.protect ~finally:(fun () -> close_client c3) @@ fun () ->
  (match decode_response schema (input_line c3.ic) with
  | R.Overloaded { max_pending; _ } ->
    Alcotest.(check int) "refusal names the configured bound" 1 max_pending
  | _ -> Alcotest.fail "third client did not get the typed Overloaded response");
  (match input_line c3.ic with
  | _ -> Alcotest.fail "server kept the overloaded connection open"
  | exception End_of_file -> ());
  (* freeing the slot admits the queued client *)
  close_client c1;
  send c2 "point *,*,*";
  match decode_response schema (input_line c2.ic) with
  | R.Answer (Ok _) -> ()
  | _ -> Alcotest.fail "queued client was not served after the slot freed"

(* ---------- result cache: hits and generation-keyed invalidation ---------- *)

let server_stats schema c =
  match decode_response schema (roundtrip c "stats") with
  | R.Stats_reply s -> s
  | _ -> Alcotest.fail "stats request did not answer with stats"

let refreeze w =
  ignore (W.insert_rows w [ ([ "S1"; "P1"; "f" ], 5.0) ]);
  let task = W.seal w in
  let oc = W.complete_refreeze w task (W.run_refreeze task) in
  Alcotest.(check bool) "refreeze committed" true oc.W.rf_committed

let test_cache_generation_invalidation () =
  with_wh @@ fun dir ->
  let config = { S.default_config with S.poll_interval_s = 0.05 } in
  with_server ~config dir @@ fun srv ->
  let schema = Qc_core.Packed.schema (W.packed (W.open_dir dir)) in
  let g0 = S.generation srv in
  with_client (S.port srv) @@ fun c ->
  ignore (roundtrip c "point *,*,*");
  ignore (roundtrip c "point *,*,*");
  let s1 = server_stats schema c in
  Alcotest.(check int) "second identical query hit the cache" 1 s1.R.sv_cache_hits;
  Alcotest.(check int) "first query missed" 1 s1.R.sv_cache_misses;
  (* advance the generation under the server *)
  let w = W.open_dir dir in
  refreeze w;
  eventually "watcher republish" (fun () -> S.generation srv > g0);
  (* the same line now keys a fresh generation: a miss, not a stale hit *)
  ignore (roundtrip c "point *,*,*");
  let s2 = server_stats schema c in
  Alcotest.(check int) "same query after refreeze misses" 2 s2.R.sv_cache_misses;
  Alcotest.(check int) "no stale hit crossed the generation" 1 s2.R.sv_cache_hits;
  Alcotest.(check int) "stats reports the new generation" (g0 + 1) s2.R.sv_generation

(* ---------- zero-downtime serving under refreeze ---------- *)

let test_zero_downtime_under_refreeze () =
  with_wh @@ fun dir ->
  let config = { S.default_config with S.poll_interval_s = 0.05 } in
  with_server ~config dir @@ fun srv ->
  let g0 = S.generation srv in
  (* a writer advancing generations while the load generator hammers *)
  let writer =
    Domain.spawn (fun () ->
        let w = W.open_dir dir in
        for _ = 1 to 3 do
          Unix.sleepf 0.2;
          refreeze w
        done)
  in
  let r =
    match
      L.run ~host:"127.0.0.1" ~port:(S.port srv) ~clients:4 ~duration_s:1.2
        ~lines:[| "point *,*,*"; "point S1,*,*"; "range *,P1|P2,*"; "iceberg sum 1" |]
        ()
    with
    | Ok r -> r
    | Error msg -> Alcotest.failf "loadgen setup failed: %s" msg
  in
  Domain.join writer;
  Alcotest.(check bool) "requests completed" true (r.L.lg_ok > 0);
  Alcotest.(check int) "zero failed requests during refreeze" 0 r.L.lg_errors;
  Alcotest.(check int) "zero protocol errors during refreeze" 0 r.L.lg_protocol_errors;
  Alcotest.(check int) "zero dropped connections during refreeze" 0 r.L.lg_closed_early;
  eventually "generation advanced" (fun () -> S.generation srv >= g0 + 3)

(* ---------- crash mid-response: whole lines, then clean EOF ---------- *)

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Buffer.contents buf
  in
  go ()

let test_crash_mid_response_never_tears () =
  with_wh @@ fun dir ->
  let portfile = Filename.concat dir "crash-port" in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (* child: the third response write crashes the process like a power
       cut — before the line's single flush, so nothing partial escapes *)
    FP.set ~hits:3 "serve.respond" FP.Crash;
    let srv = S.start ~config:{ S.default_config with S.cache_capacity = 0 } dir in
    let oc = open_out portfile in
    output_string oc (string_of_int (S.port srv));
    close_out oc;
    while true do
      Unix.sleepf 0.1
    done
  end
  else begin
    eventually "child server port" (fun () ->
        Sys.file_exists portfile
        &&
        let ic = open_in portfile in
        let ok = try String.length (input_line ic) > 0 with End_of_file -> false in
        close_in ic;
        ok);
    let ic = open_in portfile in
    let port = int_of_string (input_line ic) in
    close_in ic;
    let c = connect port in
    Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
    for _ = 1 to 6 do
      send c "point *,*,*"
    done;
    let data = read_all c.fd in
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WEXITED n ->
      Alcotest.(check int) "child died through the failpoint exit" FP.exit_code n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.fail "child did not exit through the failpoint");
    (* exactly the responses before the armed hit, each a complete line *)
    Alcotest.(check bool) "every byte received belongs to a whole line" true
      (String.length data = 0 || data.[String.length data - 1] = '\n');
    let lines = String.split_on_char '\n' data |> List.filter (fun l -> String.length l > 0) in
    Alcotest.(check int) "two whole responses escaped before the crash" 2 (List.length lines);
    List.iter
      (fun line ->
        match Jx.parse line with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "torn half-JSON line escaped (%s): %s" msg line)
      lines
  end

(* ---------- config validation ---------- *)

let test_config_validation () =
  with_wh @@ fun dir ->
  List.iter
    (fun (what, config) ->
      match S.start ~config dir with
      | srv ->
        ignore (S.stop srv);
        Alcotest.failf "%s accepted" what
      | exception Invalid_argument _ -> ())
    [
      ("workers = 0", { S.default_config with S.workers = 0 });
      ("max_clients = 0", { S.default_config with S.max_clients = 0 });
      ("max_pending = 0", { S.default_config with S.max_pending = 0 });
    ]

let () =
  Alcotest.run "qc_server"
    [
      ( "serve",
        [
          (* must run first: [Unix.fork] is illegal once any test has spawned
             server domains in this process *)
          Alcotest.test_case "crash mid-response never tears a line" `Quick
            test_crash_mid_response_never_tears;
          Alcotest.test_case "answers match the direct engine run" `Quick
            test_answers_match_engine;
          Alcotest.test_case "bad lines are typed errors, connection survives" `Quick
            test_bad_line_keeps_connection;
          Alcotest.test_case "admission refuses with a typed Overloaded line" `Quick
            test_overload_refusal;
          Alcotest.test_case "cache hits within a generation, invalidates across" `Quick
            test_cache_generation_invalidation;
          Alcotest.test_case "zero downtime under concurrent refreeze" `Quick
            test_zero_downtime_under_refreeze;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
