(* Property-based differential testing of query answering.

   Every random instance is answered three ways — naive full-cube group-by
   (the oracle), the mutable QC-tree, and its frozen packed form — and the
   answers must agree cell for cell.  The packed form must additionally
   touch exactly as many nodes as the mutable tree on every point query:
   that structural parity is what justifies calling it a fast path rather
   than a different algorithm. *)

open Qc_cube
module T = Qc_core.Qc_tree
module P = Qc_core.Packed
module Q = Qc_core.Query

let point_opt t c = Result.to_option (Q.point_result t c)

let point_packed_opt p c = Result.to_option (Q.point_result_packed p c)

let range_list t r = Result.get_ok (Q.range_result t r)

let range_packed_list p r = Result.get_ok (Q.range_result_packed p r)

let build c =
  let table = Prop.table_of c in
  let tree = T.of_table table in
  (table, tree, P.of_tree tree)

let agg_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Agg.approx_equal x y
  | _ -> false

(* point queries: oracle vs tree vs packed, plus the iceberg-pruned oracle *)
let prop_point_differential c =
  let table, tree, packed = build c in
  let cube = Full_cube.compute table in
  let cube_ms = Full_cube.compute ~min_support:c.Prop.min_support table in
  let ok = ref true in
  Prop.iter_cells c (fun cell ->
      let truth = Full_cube.find cube cell in
      let tree_ans = point_opt tree cell in
      let packed_ans = point_packed_opt packed cell in
      if not (agg_opt_equal truth tree_ans) then ok := false;
      (* the packed answer must be *identical*, floats and all: both forms
         return the same stored aggregate *)
      if tree_ans <> packed_ans then ok := false;
      let expected_ms =
        match truth with
        | Some a when a.Agg.count >= c.Prop.min_support -> Some a
        | _ -> None
      in
      if not (agg_opt_equal (Full_cube.find cube_ms cell) expected_ms) then ok := false);
  !ok

(* identical node-access counts on every cell of the space *)
let prop_node_access_parity c =
  let _, tree, packed = build c in
  let ok = ref true in
  Prop.iter_cells c (fun cell ->
      if Q.node_accesses tree cell <> Q.node_accesses_packed packed cell then ok := false);
  !ok

(* range queries: oracle expansion vs tree vs packed *)
let prop_range_differential c =
  let table, tree, packed = build c in
  let cube = Full_cube.compute table in
  let expand (q : Q.range) =
    (* all instantiations of the range with a non-empty cover set *)
    let cell = Array.make c.Prop.dims Cell.all in
    let out = ref [] in
    let rec go i =
      if i >= c.Prop.dims then begin
        match Full_cube.find cube cell with
        | Some a -> out := (Array.to_list cell, a) :: !out
        | None -> ()
      end
      else if Array.length q.(i) = 0 then go (i + 1)
      else
        Array.iter
          (fun v ->
            cell.(i) <- v;
            go (i + 1);
            cell.(i) <- Cell.all)
          q.(i)
    in
    go 0;
    !out
  in
  let cmp (c1, _) (c2, _) = List.compare Int.compare c1 c2 in
  let canon l = List.sort cmp (List.map (fun (cl, a) -> (Array.to_list cl, a)) l) in
  let lists_equal xs ys =
    List.length xs = List.length ys
    && List.for_all2
         (fun (c1, a1) (c2, a2) -> List.equal Int.equal c1 c2 && Agg.approx_equal a1 a2)
         xs ys
  in
  List.for_all
    (fun q ->
      let expected = List.sort cmp (expand q) in
      lists_equal expected (canon (range_list tree q))
      && lists_equal expected (canon (range_packed_list packed q)))
    (Prop.random_ranges c 10)

(* iceberg queries: exactly the classes at or above the threshold, and each
   reported bound agrees with the oracle *)
let prop_iceberg_differential c =
  let table, tree, _ = build c in
  let cube = Full_cube.compute table in
  let threshold = float_of_int c.Prop.min_support in
  let result = Q.iceberg (Q.make_index tree Agg.Count) ~threshold in
  let expected = ref [] in
  T.iter_classes
    (fun _ ub agg ->
      if Agg.value Agg.Count agg >= threshold then expected := (Array.to_list ub, agg) :: !expected)
    tree;
  let sort l = List.sort (fun (c1, _) (c2, _) -> List.compare Int.compare c1 c2) l in
  let expected = sort !expected in
  let got = sort (List.map (fun (cl, a) -> (Array.to_list cl, a)) result) in
  List.length expected = List.length got
  && List.for_all2
       (fun (c1, a1) (c2, a2) ->
         List.equal Int.equal c1 c2 && Agg.approx_equal a1 a2
         && agg_opt_equal (Full_cube.find cube (Array.of_list c1)) (Some a1))
       expected got

(* freeze / thaw: packing is lossless down to the canonical form *)
let prop_freeze_thaw_roundtrip c =
  let _, tree, packed = build c in
  T.canonical_string (P.to_tree packed) = T.canonical_string tree
  && P.n_nodes packed = T.n_nodes tree
  && P.n_links packed = T.n_links tree
  && P.n_classes packed = T.n_classes tree

(* every generated tree passes the full invariant audit — structure, packed
   columns, serialized bytes, round trips, class DFS and sampled oracle
   queries against the base table *)
let prop_invariant_audit c =
  let table, tree, _ = build c in
  Prop.check_clean ~deep:true ~base:table tree

let () =
  Alcotest.run "qc_prop_query"
    [
      ( "differential",
        [
          Prop.qcheck_case ~count:220 ~name:"point queries match the full cube (tree and packed)"
            Prop.arb_case prop_point_differential;
          Prop.qcheck_case ~count:220 ~name:"packed point queries touch exactly as many nodes"
            Prop.arb_case prop_node_access_parity;
          Prop.qcheck_case ~count:200 ~name:"range queries match the oracle (tree and packed)"
            Prop.arb_case prop_range_differential;
          Prop.qcheck_case ~count:200 ~name:"iceberg queries return exactly the heavy classes"
            Prop.arb_case prop_iceberg_differential;
        ] );
      ( "structure",
        [
          Prop.qcheck_case ~count:200 ~name:"freeze/thaw round-trips canonically" Prop.arb_case
            prop_freeze_thaw_roundtrip;
          Prop.qcheck_case ~count:150 ~name:"generated trees pass the full invariant audit"
            Prop.arb_case prop_invariant_audit;
        ] );
    ]
