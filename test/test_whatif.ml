open Qc_cube
module T = Qc_core.Qc_tree
module W = Qc_core.Whatif

let point_opt t c = Result.to_option (Qc_core.Query.point_result t c)

(* ---------- Qc_tree.copy ---------- *)

let prop_copy_canonical =
  Helpers.qcheck_case ~count:120 ~name:"copy is canonically identical and independent"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let table = Helpers.random_table rng ~dims ~card ~rows () in
      let tree = T.of_table table in
      let dup = T.copy tree in
      let same = T.canonical_string tree = T.canonical_string dup in
      (* mutate the copy: the original must not change *)
      let before = T.canonical_string tree in
      let delta = Helpers.random_table rng ~schema:(Table.schema table) ~dims ~card ~rows:2 () in
      let base = Table.copy table in
      ignore (Qc_core.Maintenance.insert_batch dup ~base ~delta);
      same && T.canonical_string tree = before && T.validate dup = Ok ())

(* ---------- What-if scenarios ---------- *)

let test_whatif_insert () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let tree = T.of_table base in
  let scenario = W.create tree base in
  let hypo = Table.create schema in
  Table.add_row hypo [ "S2"; "P2"; "f" ] 30.0;
  W.assume_inserted scenario hypo;
  (* the original warehouse is untouched *)
  Alcotest.(check int) "base unchanged" 3 (Table.n_rows base);
  Alcotest.(check (option Helpers.agg_option)) "dummy" None None;
  (match point_opt tree (Cell.parse schema [ "S2"; "*"; "f" ]) with
  | Some a -> Alcotest.(check int) "original count" 1 a.Agg.count
  | None -> Alcotest.fail "original query failed");
  (* the scenario sees the hypothesis *)
  (match point_opt (W.tree scenario) (Cell.parse schema [ "S2"; "*"; "f" ]) with
  | Some a ->
    Alcotest.(check int) "scenario count" 2 a.Agg.count;
    Alcotest.(check (float 1e-9)) "scenario sum" 39.0 a.Agg.sum
  | None -> Alcotest.fail "scenario query failed");
  (* diffing *)
  let cells =
    [ Cell.parse schema [ "S2"; "*"; "f" ]; Cell.parse schema [ "S1"; "*"; "s" ] ]
  in
  let deltas = W.compare_cells scenario ~against:tree cells in
  Alcotest.(check int) "only the touched cell differs" 1 (List.length deltas);
  match deltas with
  | [ d ] -> Alcotest.(check string) "which" "(S2, *, f)" (Cell.to_string schema d.cell)
  | _ -> assert false

let test_whatif_delete () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let tree = T.of_table base in
  let scenario = W.create tree base in
  W.assume_deleted scenario (Table.sub base [ 2 ]);
  Alcotest.(check int) "scenario table shrank" 2 (Table.n_rows (W.table scenario));
  Alcotest.(check int) "original intact" 3 (Table.n_rows base);
  Alcotest.(check bool) "deleted cell gone in scenario" true
    (Option.is_none (point_opt (W.tree scenario) (Cell.parse schema [ "S2"; "*"; "*" ])));
  Alcotest.(check bool) "still present in original" true
    (Option.is_some (point_opt tree (Cell.parse schema [ "S2"; "*"; "*" ])))

let test_whatif_affected_classes () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let tree = T.of_table base in
  let scenario = W.create tree base in
  let hypo = Table.create schema in
  Table.add_row hypo [ "S1"; "P1"; "s" ] 100.0;
  W.assume_inserted scenario hypo;
  let affected = W.affected_classes scenario ~against:tree in
  (* exactly the classes covering (S1,P1,s): C5, C4, C6 and the root class *)
  Alcotest.(check int) "4 classes affected" 4 (List.length affected);
  List.iter
    (fun (ub, before, after) ->
      match (before, after) with
      | Some b, Some a ->
        Alcotest.(check int)
          (Printf.sprintf "count grew at %s" (Cell.to_string schema ub))
          (b.Agg.count + 1) a.Agg.count
      | _ -> Alcotest.fail "classes should persist")
    affected

let prop_whatif_matches_committed =
  Helpers.qcheck_case ~count:80 ~name:"a scenario equals actually committing the update"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let base = Helpers.random_table rng ~dims ~card ~rows () in
      let delta = Helpers.random_table rng ~schema:(Table.schema base) ~dims ~card ~rows:3 () in
      let tree = T.of_table base in
      let scenario = W.create tree base in
      W.assume_inserted scenario delta;
      let committed = Table.copy base in
      Table.append committed delta;
      let rebuilt = T.of_table committed in
      T.canonical_string (W.tree scenario) = T.canonical_string rebuilt)

(* ---------- update_batch (modification) ---------- *)

let test_update_batch () =
  let base = Helpers.sales_table () in
  let schema = Table.schema base in
  let tree = T.of_table base in
  (* correction: the S2 sale was really 15, in spring *)
  let old_rows = Table.sub base [ 2 ] in
  let new_rows = Table.create schema in
  Table.add_row new_rows [ "S2"; "P1"; "s" ] 15.0;
  let new_base, del_stats, ins_stats =
    Qc_core.Maintenance.update_batch tree ~base ~old_rows ~new_rows
  in
  Alcotest.(check int) "row count" 3 (Table.n_rows new_base);
  Alcotest.(check bool) "old classes removed" true (del_stats.removed > 0);
  Alcotest.(check bool) "new classes created" true (ins_stats.fresh > 0);
  (match point_opt tree (Cell.parse schema [ "S2"; "*"; "*" ]) with
  | Some a -> Alcotest.(check (float 1e-9)) "modified measure" 15.0 a.Agg.sum
  | None -> Alcotest.fail "modified row lost");
  Alcotest.(check bool) "fall sales gone" true
    (Option.is_none (point_opt tree (Cell.parse schema [ "*"; "*"; "f" ])));
  (* equivalence with a rebuild *)
  let rebuilt = T.of_table new_base in
  let ok = ref true in
  Helpers.iter_all_cells ~dims:3 ~card:3 (fun cell ->
      match (point_opt tree cell, point_opt rebuilt cell) with
      | None, None -> ()
      | Some a, Some b when Agg.approx_equal a b -> ()
      | _ -> ok := false);
  Alcotest.(check bool) "query equivalent to rebuild" true !ok

let prop_update_batch_equiv =
  Helpers.qcheck_case ~count:80 ~name:"modification = delete + insert, equals rebuild"
    Helpers.table_config (fun (dims, card, rows, seed) ->
      let rng = Qc_util.Rng.create seed in
      let base = Helpers.random_table rng ~dims ~card ~rows () in
      let k = 1 + Qc_util.Rng.int rng (min 3 (Table.n_rows base)) in
      let idxs = Array.init (Table.n_rows base) Fun.id in
      Qc_util.Rng.shuffle rng idxs;
      let old_rows = Table.sub base (Array.to_list (Array.sub idxs 0 k)) in
      let new_rows = Helpers.random_table rng ~schema:(Table.schema base) ~dims ~card ~rows:k () in
      let tree = T.of_table base in
      let new_base, _, _ = Qc_core.Maintenance.update_batch tree ~base ~old_rows ~new_rows in
      let rebuilt = T.of_table new_base in
      let ok = ref true in
      let c = Schema.cardinality (Table.schema base) 0 in
      Helpers.iter_all_cells ~dims ~card:c (fun cell ->
          match (point_opt tree cell, point_opt rebuilt cell) with
          | None, None -> ()
          | Some a, Some b when Agg.approx_equal a b -> ()
          | _ -> ok := false);
      !ok && T.validate tree = Ok ())

let () =
  Alcotest.run "qc_whatif"
    [
      ("copy", [ prop_copy_canonical ]);
      ( "scenarios",
        [
          Alcotest.test_case "hypothetical insert" `Quick test_whatif_insert;
          Alcotest.test_case "hypothetical delete" `Quick test_whatif_delete;
          Alcotest.test_case "affected classes" `Quick test_whatif_affected_classes;
          prop_whatif_matches_committed;
        ] );
      ( "modification",
        [
          Alcotest.test_case "update_batch" `Quick test_update_batch;
          prop_update_batch_equiv;
        ] );
    ]
