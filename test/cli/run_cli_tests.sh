#!/usr/bin/env bash
# Shell-level contract tests for the qct CLI: every failure path must exit
# nonzero with a diagnostic on stderr, success paths exit zero, and the
# packed and text formats answer identically through every subcommand.
set -u

QCT="$1"
fails=0

expect() {
  local want="$1"; shift
  "$@" >stdout.txt 2>stderr.txt
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want" >&2
    sed 's/^/  stderr: /' stderr.txt >&2
    fails=$((fails + 1))
  fi
}

expect_stderr() {
  local pattern="$1"
  if ! grep -q "$pattern" stderr.txt; then
    echo "FAIL: stderr does not match '$pattern'" >&2
    sed 's/^/  stderr: /' stderr.txt >&2
    fails=$((fails + 1))
  fi
}

printf 'Store,Product,Season,Sale\nS1,P1,s,6\nS1,P2,s,12\nS2,P1,f,9\n' > sales.csv

# --- success paths exit 0 ---
expect 0 "$QCT" build sales.csv sales.qct
expect 0 "$QCT" build sales.csv sales.qcp --packed
expect 0 "$QCT" query sales.qct 'S2,*,f'
expect 0 "$QCT" query sales.qcp 'S2,*,f' --packed
expect 0 "$QCT" explain sales.qcp 'S2,*,f' --packed

# --- both formats load through either path and answer identically ---
"$QCT" query sales.qct 'S2,*,f' > a.txt
"$QCT" query sales.qcp 'S2,*,f' --packed > b.txt
"$QCT" query sales.qcp 'S2,*,f' > c.txt          # packed file, mutable path
"$QCT" query sales.qct 'S2,*,f' --packed > d.txt # text file, packed path
for f in b.txt c.txt d.txt; do
  if ! cmp -s a.txt "$f"; then
    echo "FAIL: $f differs from the text-format answer" >&2
    fails=$((fails + 1))
  fi
done

# --- runtime failures exit 1 with a qct: diagnostic ---
# query parses its argv through Request.of_line, so the diagnostic carries
# the same "line N:" text as a batch file (the argv is line 1)
expect 1 "$QCT" query sales.qct 'S9,*,f'       # unknown dimension value
expect_stderr '^qct:'
expect_stderr 'line 1:'
expect 1 "$QCT" query no-such-file.qct 'S2,*,f'
expect_stderr '^qct:'

# a missing CSV is caught by cmdliner's argument validation (usage error)
expect 124 "$QCT" build no-such-file.csv out.qct
expect_stderr '^qct:'

printf 'garbage' > bad.qct
expect 1 "$QCT" query bad.qct 'S2,*,f'
expect_stderr '^qct:'

head -c 20 sales.qcp > truncated.qcp
expect 1 "$QCT" query truncated.qcp 'S2,*,f'
expect_stderr '^qct:'
expect_stderr 'truncated'

# --- check: 0 = clean, 2 = violations, 1 = cannot run ---
expect 0 "$QCT" check sales.qct
expect 0 "$QCT" check sales.qcp --packed --deep --base sales.csv
expect 1 "$QCT" check sales.qct --deep          # --deep needs the oracle
expect_stderr 'needs --base'
expect 2 "$QCT" check truncated.qcp
if ! grep -q 'violation \[qctp-truncated\]' stdout.txt; then
  echo "FAIL: check did not name the qctp-truncated violation" >&2
  fails=$((fails + 1))
fi
expect 2 "$QCT" check truncated.qcp --json
if ! grep -q '"qctp-truncated"' stdout.txt; then
  echo "FAIL: JSON report lacks the qctp-truncated label" >&2
  fails=$((fails + 1))
fi
# check --json violations use the shared {label, file_or_path, detail}
# envelope (same as recover --json and qclint --json)
for key in '"label"' '"file_or_path": *"truncated.qcp"' '"detail"'; do
  if ! grep -q "$key" stdout.txt; then
    echo "FAIL: check --json violation lacks the envelope field $key" >&2
    fails=$((fails + 1))
  fi
done

# --- batch: answers are byte-identical across --jobs and backends ---
printf '# demo\npoint S1,P2,*\npoint *,*,*\npoint S2,P2,*\nrange *,P1|P2,f\niceberg sum 10\n' > queries.txt
expect 0 "$QCT" batch sales.qcp queries.txt --jobs 1
cp stdout.txt batch1.txt
expect 0 "$QCT" batch sales.qcp queries.txt --jobs 4
if ! cmp -s batch1.txt stdout.txt; then
  echo "FAIL: batch --jobs 4 stdout differs from --jobs 1" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" batch sales.qct queries.txt --backend tree --node-accesses
if ! grep -q 'nodes\]' stdout.txt; then
  echo "FAIL: batch --node-accesses did not annotate point queries" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" batch sales.csv queries.txt --backend dwarf   # dwarf builds from CSV
expect 0 "$QCT" batch sales.qcp queries.txt --json --jobs 2
if ! grep -q '"backend":"packed"' stdout.txt; then
  echo "FAIL: batch --json lacks the backend field" >&2
  fails=$((fails + 1))
fi

# the deprecated --packed alias warns but still selects the packed backend
expect 0 "$QCT" batch sales.qcp queries.txt --packed --jobs 1
expect_stderr 'deprecated'
if ! cmp -s batch1.txt stdout.txt; then
  echo "FAIL: batch --packed differs from --backend packed" >&2
  fails=$((fails + 1))
fi

# a bad query line fails the whole batch up front (exit 1, qct: diagnostic)
# with the physical line number — same grammar and error text as qct query
printf 'point S9,*,*\n' > badq.txt
expect 1 "$QCT" batch sales.qcp badq.txt
expect_stderr '^qct:'
expect_stderr 'line 1:'
printf '# comment\n\nfrobnicate 1\n' > badq.txt
expect 1 "$QCT" batch sales.qcp badq.txt
expect_stderr '^qct:'
expect_stderr 'line 3:'                # physical line, comments/blanks counted
expect 124 "$QCT" batch sales.qcp no-such-queries.txt   # missing file: usage error

# --- maintenance with --self-check stays clean on the running example ---
printf 'Store,Product,Season,Sale\nS2,P2,f,3\n' > delta.csv
expect 0 "$QCT" insert sales.qct sales.csv delta.csv grown.qct --self-check
if ! grep -q 'self-check after insert: OK' stdout.txt; then
  echo "FAIL: insert --self-check did not report OK" >&2
  fails=$((fails + 1))
fi

# --- recover / wal: 0 = healthy, 2 = repairs needed under --dry-run,
# --- 1 = not a recoverable warehouse ---
rm -rf wh
mkdir wh
cp sales.csv wh/base.csv
"$QCT" build sales.csv wh/tree.qct >/dev/null 2>&1   # legacy layout: images, no manifest

expect 0 "$QCT" recover wh --dry-run   # legacy but structurally sound
expect 0 "$QCT" recover wh             # adopts it: writes manifest + journal
if [ ! -f wh/manifest ]; then
  echo "FAIL: recover did not write a manifest" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" recover wh --dry-run   # now a clean manifested checkpoint
expect 0 "$QCT" wal wh                 # empty journal lists fine

printf 'torn-half-frame' >> wh/wal.log # crash residue: garbage after the header
expect 0 "$QCT" wal wh                 # listing tolerates a torn tail
if ! grep -q 'torn' stdout.txt; then
  echo "FAIL: qct wal did not report the torn tail" >&2
  fails=$((fails + 1))
fi
expect 2 "$QCT" recover wh --dry-run   # repairs needed -> exit 2, nothing touched
expect_stderr 'torn journal tail'      # qc.warehouse log source reports the damage
expect 2 "$QCT" recover wh --dry-run --json
if ! grep -q '"corrupt": *true' stdout.txt; then
  echo "FAIL: recover --json lacks \"corrupt\": true" >&2
  fails=$((fails + 1))
fi
# crash residue is reported in the shared violation envelope
for key in '"label": *"torn-tail"' '"file_or_path": *"wh"' '"detail"'; do
  if ! grep -q "$key" stdout.txt; then
    echo "FAIL: recover --json violation lacks the envelope field $key" >&2
    fails=$((fails + 1))
  fi
done
expect 0 "$QCT" recover wh             # repair persists a clean checkpoint
expect 0 "$QCT" recover wh --dry-run
expect 0 "$QCT" wal wh

printf 'XXXX-not-a-journal' > wh/wal.log   # damage no crash can produce
expect 1 "$QCT" recover wh
expect_stderr '^qct:'
expect 1 "$QCT" wal wh
expect_stderr '^qct:'
rm wh/wal.log                          # a missing journal is just empty
expect 0 "$QCT" recover wh --dry-run

# --- batch over a warehouse directory serves the frozen packed snapshot ---
expect 0 "$QCT" batch wh queries.txt --jobs 2
if ! cmp -s batch1.txt stdout.txt; then
  echo "FAIL: warehouse batch differs from the packed-file batch" >&2
  fails=$((fails + 1))
fi
expect 1 "$QCT" batch wh queries.txt --backend tree   # directories are packed-only
expect_stderr '^qct:'

expect 1 "$QCT" recover no-such-dir
expect_stderr '^qct:'
expect 1 "$QCT" wal no-such-dir
expect_stderr '^qct:'

# --- streaming ingest: absorb a stream, quarantine poison, refreeze ---
rm -rf iwh
mkdir iwh
cp sales.csv iwh/base.csv
"$QCT" build sales.csv iwh/tree.qct >/dev/null 2>&1
expect 0 "$QCT" recover iwh            # adopt as a manifested warehouse
{ for i in $(seq 1 120); do echo "S1,P1,s,$i"; done
  echo 'poison-line'
  echo 'S2,P2,f,not-a-number'; } > stream.csv
expect 0 "$QCT" ingest iwh --from stream.csv --batch-rows 8 --refreeze-rows 40 --json
for key in '"lines_read":122' '"rows_ingested":120' '"quarantined":2' '"refreezes"' '"final_generation"'; do
  if ! grep -q "$key" stdout.txt; then
    echo "FAIL: ingest --json lacks $key" >&2
    fails=$((fails + 1))
  fi
done
expect_stderr 'now serving'            # each committed refreeze is announced
if ! grep -q '^line 121: ' iwh/.quarantine || ! grep -q '^line 122: ' iwh/.quarantine; then
  echo "FAIL: quarantine file lacks the poison lines with their line numbers" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" check iwh --deep       # directory check audits the live warehouse
expect 1 "$QCT" ingest iwh --from stream.csv --follow stream.csv   # mutually exclusive
expect_stderr '^qct:'

# a kill mid-refreeze strands a rotated segment; wal lists it per segment,
# recover reports every repair in one envelope, then fixes them all
expect 42 env QC_FAILPOINTS='refreeze.segment-delete@1:crash' \
  "$QCT" ingest iwh --from stream.csv --batch-rows 8 --refreeze-rows 40
expect 0 "$QCT" wal iwh
for pattern in 'wal-000000.log \[segment 0\]' 'wal.log \[active\]' 'stale: superseded'; do
  if ! grep -q "$pattern" stdout.txt; then
    echo "FAIL: qct wal per-segment output lacks '$pattern'" >&2
    fails=$((fails + 1))
  fi
done
expect 0 "$QCT" wal iwh --json
for key in '"role":"segment"' '"role":"active"' '"generation_span"' '"stale":true' '"seq":0'; do
  if ! grep -q "$key" stdout.txt; then
    echo "FAIL: qct wal --json lacks $key" >&2
    fails=$((fails + 1))
  fi
done
expect 2 "$QCT" recover iwh --dry-run --json   # one envelope, every repair
for key in '"label": *"stale-records"' '"label": *"wal-segments"' '"corrupt": *true'; do
  if ! grep -q "$key" stdout.txt; then
    echo "FAIL: recover --json after a refreeze kill lacks $key" >&2
    fails=$((fails + 1))
  fi
done
expect 0 "$QCT" recover iwh
expect 0 "$QCT" check iwh --deep
expect 0 "$QCT" wal iwh

# --- tracing: qct trace / --trace write Chrome trace-event JSON ---
expect 0 "$QCT" trace sales.qcp queries.txt trace.json --jobs 2
expect_stderr 'trace: .* span(s)'
for key in '"ph"' '"ts"' '"dur"' '"pid"' '"tid"' '"engine.batch"' '"engine.chunk"'; do
  if ! grep -q "$key" trace.json; then
    echo "FAIL: trace.json lacks $key" >&2
    fails=$((fails + 1))
  fi
done
expect 0 "$QCT" batch sales.qcp queries.txt --jobs 2 --trace trace2.json
if ! grep -q '"ph"' trace2.json; then
  echo "FAIL: batch --trace did not write trace events" >&2
  fails=$((fails + 1))
fi
# tracing must not perturb the deterministic batch answers
expect 0 "$QCT" batch sales.qcp queries.txt --jobs 4 --trace trace3.json
if ! cmp -s batch1.txt stdout.txt; then
  echo "FAIL: batch --trace stdout differs from the untraced run" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" build sales.csv rebuilt.qct --trace build-trace.json
if ! grep -q '"dfs.visit"' build-trace.json; then
  echo "FAIL: build --trace lacks the dfs.visit span" >&2
  fails=$((fails + 1))
fi

# an unwritable trace path is a runtime failure (1), not a usage error
expect 1 "$QCT" trace sales.qcp queries.txt /nonexistent-dir/out.json
expect_stderr '^qct:'
expect 1 "$QCT" batch sales.qcp queries.txt --trace /nonexistent-dir/out.json
expect_stderr '^qct:'

# --- batch --json carries per-chunk / per-domain timing breakdowns ---
expect 0 "$QCT" batch sales.qcp queries.txt --json --jobs 2
for key in '"chunks"' '"domains"' '"busy_s"' '"elapsed_s"'; do
  if ! grep -q "$key" stdout.txt; then
    echo "FAIL: batch --json lacks $key" >&2
    fails=$((fails + 1))
  fi
done

# --- the slow-query log reports on the qc.slow source ---
expect 0 "$QCT" batch sales.qcp queries.txt --jobs 2 --slow-ms 0
expect_stderr 'slow query: point (S1, P2, \*)'
expect_stderr 'nodes='
expect 0 "$QCT" query sales.qct 'S2,*,f' --slow-ms 0
expect_stderr 'slow query:'
expect 1 "$QCT" batch sales.qcp queries.txt --slow-ms=-1   # negative threshold
expect_stderr '^qct:'

# --- stats --prom emits Prometheus text exposition with percentiles ---
expect 0 "$QCT" stats sales.csv --prom
if ! grep -q '^# TYPE qc_' stdout.txt; then
  echo "FAIL: stats --prom lacks # TYPE lines" >&2
  fails=$((fails + 1))
fi
if ! grep -q '_p99 ' stdout.txt; then
  echo "FAIL: stats --prom lacks p99 gauges" >&2
  fails=$((fails + 1))
fi
if ! grep -q '_bucket{le="+Inf"}' stdout.txt; then
  echo "FAIL: stats --prom lacks +Inf buckets" >&2
  fails=$((fails + 1))
fi
# server and ingest instruments are registered at module init, so they are
# present (at zero) in any qct process; counters carry the _total suffix
for metric in qc_serve_requests_total qc_serve_cache_hits_total \
              qc_serve_overloaded_total qc_ingest_queue_depth; do
  if ! grep -q "^$metric " stdout.txt; then
    echo "FAIL: stats --prom lacks $metric" >&2
    fails=$((fails + 1))
  fi
done

# --- serve / loadgen: the daemon answers the shared grammar over TCP ---
printf 'point S1,P2,*\npoint *,*,*\nrange *,P1|P2,f\niceberg sum 10\nstats\ndescribe\n' > servq.txt
"$QCT" serve wh --port 0 --cache 64 > serve-out.txt 2> serve-err.txt &
serve_pid=$!
serve_port=""
for _ in $(seq 1 100); do
  serve_port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' serve-out.txt)
  [ -n "$serve_port" ] && break
  sleep 0.1
done
if [ -z "$serve_port" ]; then
  echo "FAIL: qct serve never announced its port" >&2
  sed 's/^/  serve: /' serve-err.txt >&2
  fails=$((fails + 1))
  kill "$serve_pid" 2>/dev/null
else
  expect 0 "$QCT" loadgen "127.0.0.1:$serve_port" servq.txt --clients 4 --requests 400 --json
  # every request answered, none dropped, refused, or torn
  for key in '"sent":400' '"ok":400' '"errors":0' '"overloaded":0' \
             '"protocol_errors":0' '"closed_early":0'; do
    if ! grep -q "$key" stdout.txt; then
      echo "FAIL: loadgen --json lacks $key" >&2
      sed 's/^/  loadgen: /' stdout.txt >&2
      fails=$((fails + 1))
    fi
  done
  kill -INT "$serve_pid"
  wait "$serve_pid"
  serve_exit=$?
  if [ "$serve_exit" -ne 0 ]; then
    echo "FAIL: qct serve exited $serve_exit on SIGINT, expected 0" >&2
    sed 's/^/  serve: /' serve-err.txt >&2
    fails=$((fails + 1))
  fi
  # the shutdown summary reports the request and cache counters; six
  # distinct queries from 400 requests must have hit the cache
  if ! grep -q 'served [0-9]* request(s)' serve-out.txt; then
    echo "FAIL: serve shutdown summary missing" >&2
    fails=$((fails + 1))
  fi
  if grep -q 'cache 0 hit(s)' serve-out.txt; then
    echo "FAIL: serve cache recorded zero hits on a repeating workload" >&2
    fails=$((fails + 1))
  fi
fi

# --- sharded warehouses: build / query / batch / check / recover ---
rm -rf swh swh3
expect 0 "$QCT" build sales.csv swh --shards 2 --partition range:Store --jobs 2
if [ ! -f swh/shards.manifest ] || [ ! -f swh/shard-1/manifest ]; then
  echo "FAIL: sharded build did not lay out shard directories" >&2
  fails=$((fails + 1))
fi

# scatter-gather answers are byte-identical to the single packed image,
# whatever the partitioner or worker-domain count
expect 0 "$QCT" batch swh queries.txt --jobs 1
cp stdout.txt shardbatch.txt
if ! cmp -s batch1.txt shardbatch.txt; then
  echo "FAIL: sharded batch differs from the packed-file batch" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" batch swh queries.txt --jobs 4
if ! cmp -s shardbatch.txt stdout.txt; then
  echo "FAIL: sharded batch --jobs 4 differs from --jobs 1" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" build sales.csv swh3 --shards 3   # hash is the default partitioner
expect 0 "$QCT" batch swh3 queries.txt --jobs 2
if ! cmp -s batch1.txt stdout.txt; then
  echo "FAIL: hash-sharded batch differs from the packed-file batch" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" query swh 'S2,*,f'
if ! cmp -s a.txt stdout.txt; then
  echo "FAIL: sharded point query differs from the tree answer" >&2
  fails=$((fails + 1))
fi

# the deep audit covers every shard plus tuple placement
expect 0 "$QCT" check swh --deep

# corrupt exactly one shard: check reports it (2), recover --dry-run
# reports it (2), recover repairs it — and only it
cp swh/shard-0/manifest shard0-manifest.bak
printf 'garbage' > swh/shard-1/tree.qct
expect 2 "$QCT" check swh
expect 2 "$QCT" recover swh --dry-run
expect 2 "$QCT" recover swh --dry-run --json
if ! grep -q '"shard_recoveries"' stdout.txt; then
  echo "FAIL: sharded recover --json lacks shard_recoveries" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" recover swh
if ! cmp -s shard0-manifest.bak swh/shard-0/manifest; then
  echo "FAIL: recover rewrote the healthy shard-0" >&2
  fails=$((fails + 1))
fi
expect 0 "$QCT" check swh --deep
expect 0 "$QCT" batch swh queries.txt --jobs 2
if ! cmp -s batch1.txt stdout.txt; then
  echo "FAIL: repaired sharded warehouse answers diverged" >&2
  fails=$((fails + 1))
fi

# bad --shards / --partition are usage errors (124); an unknown range
# dimension is only detectable against the CSV's schema (runtime, 1)
expect 124 "$QCT" build sales.csv x.qct --shards 0
expect 124 "$QCT" build sales.csv x.qct --partition bogus
expect 124 "$QCT" build sales.csv x.qct --partition range:
expect 1 "$QCT" build sales.csv x.qct --partition range:NoSuchDim
expect_stderr '^qct:'

# --- usage errors keep cmdliner's 124 ---
expect 124 "$QCT" no-such-subcommand
expect 124 "$QCT" query
expect 124 "$QCT" trace sales.qcp            # missing QUERIES and OUT.json

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI contract check(s) failed" >&2
  exit 1
fi
echo "qct CLI contract: all exit-code checks passed"
