open Qc_cube
module W = Qc_warehouse.Warehouse

let fresh_dir () =
  let dir = Filename.temp_file "qcwh" "" in
  Sys.remove dir;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_create_and_query () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let schema = W.schema w in
  Alcotest.(check (option (float 1e-9))) "avg" (Some 9.0)
    (W.query_value w Agg.Avg (Cell.parse schema [ "S2"; "*"; "f" ]));
  Alcotest.(check (result unit string)) "self check" (Ok ()) (W.self_check w);
  Alcotest.(check bool) "stats mention rows" true
    (String.length (W.stats w) > 0)

let test_mutations_keep_invariant () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let schema = W.schema w in
  let delta = Table.create schema in
  Table.add_row delta [ "S2"; "P2"; "f" ] 3.0;
  Table.add_row delta [ "S3"; "P1"; "s" ] 7.0;
  ignore (W.insert w delta);
  Alcotest.(check (result unit string)) "after insert" (Ok ()) (W.self_check w);
  let removal = Table.create schema in
  Table.add_row removal [ "S2"; "P2"; "f" ] 3.0;
  ignore (W.delete w removal);
  Alcotest.(check (result unit string)) "after delete" (Ok ()) (W.self_check w);
  Alcotest.(check int) "rows" 4 (Table.n_rows (W.table w));
  (* modification *)
  let old_rows = Table.create schema in
  Table.add_row old_rows [ "S3"; "P1"; "s" ] 7.0;
  let new_rows = Table.create schema in
  Table.add_row new_rows [ "S3"; "P1"; "f" ] 8.0;
  ignore (W.update w ~old_rows ~new_rows);
  Alcotest.(check (result unit string)) "after update" (Ok ()) (W.self_check w);
  match W.query w (Cell.parse schema [ "S3"; "*"; "*" ]) with
  | Some a -> Alcotest.(check (float 1e-9)) "moved sale" 8.0 a.Agg.sum
  | None -> Alcotest.fail "S3 lost"

let test_save_open_roundtrip () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      W.save w dir;
      let w' = W.open_dir dir in
      Alcotest.(check int) "rows" (Table.n_rows (W.table w)) (Table.n_rows (W.table w'));
      Alcotest.(check (result unit string)) "reopened invariant" (Ok ()) (W.self_check w');
      let schema' = W.schema w' in
      Alcotest.(check (option (float 1e-9))) "query after reopen" (Some 7.5)
        (W.query_value w' Agg.Avg (Cell.parse schema' [ "*"; "P1"; "*" ]));
      (* maintenance continues after reopening *)
      let delta = Table.create schema' in
      Table.add_row delta [ "S1"; "P1"; "f" ] 2.0;
      ignore (W.insert w' delta);
      Alcotest.(check (result unit string)) "invariant after reopen+insert" (Ok ())
        (W.self_check w'))

let test_iceberg_cache_invalidation () =
  let base = Helpers.sales_table () in
  let w = W.create base in
  let schema = W.schema w in
  let before = W.iceberg w Agg.Count ~threshold:2.0 in
  let delta = Table.create schema in
  Table.add_row delta [ "S2"; "P1"; "f" ] 1.0;
  ignore (W.insert w delta);
  let after = W.iceberg w Agg.Count ~threshold:2.0 in
  (* the S2 branch now has count 2, so more classes pass the threshold *)
  Alcotest.(check bool) "cache refreshed" true (List.length after > List.length before)

let test_random_workload () =
  let rng = Qc_util.Rng.create 808 in
  let base = Helpers.random_table rng ~dims:3 ~card:4 ~rows:20 () in
  let w = W.create base in
  for _ = 1 to 6 do
    if Qc_util.Rng.bool rng || Table.n_rows (W.table w) < 4 then begin
      let delta =
        Helpers.random_table rng ~schema:(W.schema w) ~dims:3 ~card:4
          ~rows:(1 + Qc_util.Rng.int rng 4) ()
      in
      ignore (W.insert w delta)
    end
    else begin
      let n = Table.n_rows (W.table w) in
      let idxs = Array.init n Fun.id in
      Qc_util.Rng.shuffle rng idxs;
      let k = 1 + Qc_util.Rng.int rng 3 in
      let delta = Table.sub (W.table w) (Array.to_list (Array.sub idxs 0 k)) in
      ignore (W.delete w delta)
    end
  done;
  Alcotest.(check (result unit string)) "invariant after workload" (Ok ()) (W.self_check w)

(* ------------------------------------------------------------------ *)
(* Durability: typed errors, journal replay, recovery                  *)
(* ------------------------------------------------------------------ *)

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* A saved warehouse directory to damage. *)
let with_saved f =
  with_dir @@ fun dir ->
  let w = W.create (Helpers.sales_table ()) in
  W.save w dir;
  f dir w

let read path = Qc_util.Durable.read_file path
let write path content = Qc_util.Durable.write_file path content

let expect_error name matches f =
  match f () with
  | (_ : W.t) -> Alcotest.failf "%s: open_dir succeeded on damaged input" name
  | exception W.Error e ->
    if not (matches e) then
      Alcotest.failf "%s: wrong error class: %s" name (W.error_to_string e)

let insert_row w values m =
  let delta = Table.create (W.schema w) in
  Table.add_row delta values m;
  ignore (W.insert w delta)

let delete_row w values m =
  let delta = Table.create (W.schema w) in
  Table.add_row delta values m;
  ignore (W.delete w delta)

let test_typed_errors () =
  expect_error "missing directory"
    (function W.Missing_file _ -> true | _ -> false)
    (fun () -> W.open_dir "/nonexistent/qc-warehouse");
  with_dir (fun dir ->
      Sys.mkdir dir 0o755;
      expect_error "missing base.csv"
        (function W.Missing_file _ -> true | _ -> false)
        (fun () -> W.open_dir dir));
  with_saved (fun dir _ ->
      (* base content matching neither the manifest nor an in-flight
         checkpoint is damage no crash can produce *)
      write (Filename.concat dir "base.csv") "tampered,with\n";
      expect_error "tampered base"
        (function W.Corrupt_base _ -> true | _ -> false)
        (fun () -> W.open_dir dir));
  with_saved (fun dir _ ->
      write (Filename.concat dir "manifest") "qcmanifest one\n";
      expect_error "mangled manifest"
        (function W.Corrupt_manifest _ -> true | _ -> false)
        (fun () -> W.open_dir dir));
  with_saved (fun dir _ ->
      (* structurally valid manifest declaring a future format version *)
      let body = "qcmanifest 2\ngeneration 1\nbase 00000000 0\ntree 00000000 0\n" in
      write (Filename.concat dir "manifest")
        (body ^ Printf.sprintf "crc %08x\n" (Qc_util.Crc32.string body));
      expect_error "future manifest version"
        (function W.Version_mismatch { got = 2; _ } -> true | _ -> false)
        (fun () -> W.open_dir dir));
  with_saved (fun dir _ ->
      write (Filename.concat dir "wal.log") "XXXXGARBAGE";
      expect_error "journal with a foreign header"
        (function W.Corrupt_wal _ -> true | _ -> false)
        (fun () -> W.open_dir dir))

let test_tree_damage_rebuilds () =
  with_saved @@ fun dir w ->
  (* flip bytes inside tree.qct: the manifest pins the damage, and the tree
     is rebuilt from base.csv instead of failing the open *)
  write (Filename.concat dir "tree.qct") "QCTPdamaged-beyond-recognition";
  let w' = W.open_dir dir in
  Alcotest.(check bool) "rebuilt" true (W.last_recovery w').W.rebuilt_tree;
  Alcotest.(check bool) "recovered flag" true (W.stats_record w').W.recovered;
  Alcotest.(check int) "rows" (Table.n_rows (W.table w)) (Table.n_rows (W.table w'));
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w')

let test_wal_replay () =
  with_saved @@ fun dir w ->
  insert_row w [ "S3"; "P3"; "f" ] 4.0;
  delete_row w [ "S1"; "P1"; "s" ] 6.0;
  let n = Table.n_rows (W.table w) in
  (* reopen WITHOUT checkpointing: the journal alone carries both batches *)
  let w' = W.open_dir dir in
  Alcotest.(check int) "rows from replay" n (Table.n_rows (W.table w'));
  Alcotest.(check int) "replayed" 2 (W.last_recovery w').W.replayed;
  Alcotest.(check int) "live records" 2 (W.stats_record w').W.wal_records;
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w');
  Alcotest.(check (option (float 1e-9))) "replayed insert answers" (Some 4.0)
    (W.query_value w' Agg.Sum (Cell.parse (W.schema w') [ "S3"; "P3"; "*" ]));
  (* a checkpoint truncates the journal and bumps the generation *)
  W.save w' dir;
  let w2 = W.open_dir dir in
  Alcotest.(check int) "journal empty after checkpoint" 0 (W.last_recovery w2).W.replayed;
  Alcotest.(check int) "generation" 2 (W.stats_record w2).W.generation

let test_torn_tail_discarded () =
  with_saved @@ fun dir w ->
  insert_row w [ "S3"; "P3"; "f" ] 4.0;
  let wal = Filename.concat dir "wal.log" in
  write wal (read wal ^ "torn-half-frame");
  let w' = W.open_dir dir in
  Alcotest.(check int) "committed record replayed" 1 (W.last_recovery w').W.replayed;
  Alcotest.(check bool) "tail discarded" true ((W.last_recovery w').W.torn_bytes > 0);
  Alcotest.(check bool) "recovered flag" true (W.stats_record w').W.recovered;
  (* the next mutation truncates the tail on disk for good *)
  insert_row w' [ "S1"; "P2"; "s" ] 5.0;
  let w2 = W.open_dir dir in
  Alcotest.(check int) "torn bytes gone" 0 (W.last_recovery w2).W.torn_bytes;
  Alcotest.(check int) "both records live" 2 (W.last_recovery w2).W.replayed;
  Alcotest.(check int) "rows" (Table.n_rows (W.table w')) (Table.n_rows (W.table w2))

let test_stale_generation_skipped () =
  with_saved @@ fun dir w ->
  insert_row w [ "S3"; "P3"; "f" ] 4.0;
  let wal = Filename.concat dir "wal.log" in
  let old_wal = read wal in
  (* checkpoint; then put the superseded journal back, as if the crash hit
     between the manifest commit and the journal truncation *)
  W.save w dir;
  write wal old_wal;
  let w' = W.open_dir dir in
  Alcotest.(check int) "stale record skipped" 1 (W.last_recovery w').W.stale_skipped;
  Alcotest.(check int) "nothing replayed" 0 (W.last_recovery w').W.replayed;
  Alcotest.(check int) "rows not double-applied" (Table.n_rows (W.table w))
    (Table.n_rows (W.table w'));
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w')

(* One reopen after a messy crash can involve several distinct repairs;
   [last_recovery] must report all of them, not just the first one the
   replay happened to hit. *)
let test_multi_action_recovery_reported () =
  with_saved @@ fun dir w ->
  insert_row w [ "S3"; "P3"; "f" ] 4.0;
  (* an interrupted rolling refreeze: the commit lands but the process dies
     before deleting the rotated segment, stranding its (now stale) records *)
  Qc_util.Failpoint.set "refreeze.segment-delete" Qc_util.Failpoint.Raise;
  Fun.protect ~finally:Qc_util.Failpoint.reset (fun () ->
      let task = W.seal w in
      let res = W.run_refreeze task in
      let oc = W.complete_refreeze w task res in
      Alcotest.(check bool) "refreeze committed despite the late fault" true oc.W.rf_committed);
  (* new work lands in the fresh journal... *)
  insert_row w [ "S2"; "P3"; "s" ] 1.0;
  (* ...and the machine dies mid-append, tearing the active tail *)
  let wal = Filename.concat dir "wal.log" in
  write wal (read wal ^ "torn-half-frame");
  let w' = W.open_dir dir in
  let r = W.last_recovery w' in
  Alcotest.(check int) "stranded segment found" 1 r.W.segments;
  Alcotest.(check int) "its superseded record skipped" 1 r.W.stale_skipped;
  Alcotest.(check int) "committed record replayed" 1 r.W.replayed;
  Alcotest.(check bool) "torn tail discarded" true (r.W.torn_bytes > 0);
  Alcotest.(check bool) "recovered flag set" true (W.recovered_something r);
  Alcotest.(check int) "state converges" (Table.n_rows (W.table w)) (Table.n_rows (W.table w'));
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w');
  (* the next checkpoint retires both the segment and the torn tail *)
  W.save w' dir;
  let w2 = W.open_dir dir in
  Alcotest.(check bool) "clean after checkpoint" false
    (W.recovered_something (W.last_recovery w2))

let test_legacy_dir () =
  with_dir @@ fun dir ->
  (* a pre-manifest directory: just the two images, written by hand *)
  Sys.mkdir dir 0o755;
  let base = Helpers.sales_table () in
  Qc_data.Csv.save base (Filename.concat dir "base.csv");
  Qc_core.Serial.save (Qc_core.Qc_tree.of_table base) (Filename.concat dir "tree.qct");
  let w = W.open_dir dir in
  Alcotest.(check int) "legacy opens at generation 0" 0 (W.stats_record w).W.generation;
  Alcotest.(check int) "rows" (Table.n_rows base) (Table.n_rows (W.table w));
  (* mutations journal even against a legacy checkpoint *)
  insert_row w [ "S3"; "P3"; "f" ] 4.0;
  let w' = W.open_dir dir in
  Alcotest.(check int) "journaled and replayed" 1 (W.last_recovery w').W.replayed;
  Alcotest.(check int) "rows after replay" (Table.n_rows (W.table w))
    (Table.n_rows (W.table w'));
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w')

let test_update_journals_two_records () =
  with_saved @@ fun dir w ->
  let old_rows = Table.create (W.schema w) in
  Table.add_row old_rows [ "S1"; "P1"; "s" ] 6.0;
  let new_rows = Table.create (W.schema w) in
  Table.add_row new_rows [ "S1"; "P1"; "f" ] 9.0;
  ignore (W.update w ~old_rows ~new_rows);
  let w' = W.open_dir dir in
  Alcotest.(check int) "delete + insert records" 2 (W.last_recovery w').W.replayed;
  Alcotest.(check (option (float 1e-9))) "moved measure" (Some 9.0)
    (W.query_value w' Agg.Sum (Cell.parse (W.schema w') [ "S1"; "P1"; "f" ]))

let test_invalid_delete_not_journaled () =
  with_saved @@ fun dir w ->
  let wal = Filename.concat dir "wal.log" in
  let before = read wal in
  (try
     delete_row w [ "S1"; "P1"; "s" ] 123.0 (* no such measure *);
     Alcotest.fail "delete of an absent row succeeded"
   with Invalid_argument _ -> ());
  Alcotest.(check string) "rejected batch never reached the journal" before (read wal);
  Alcotest.(check (result unit string)) "invariant" (Ok ()) (W.self_check w)

let () =
  Alcotest.run "qc_warehouse"
    [
      ( "warehouse",
        [
          Alcotest.test_case "create and query" `Quick test_create_and_query;
          Alcotest.test_case "mutations keep invariant" `Quick test_mutations_keep_invariant;
          Alcotest.test_case "save/open roundtrip" `Quick test_save_open_roundtrip;
          Alcotest.test_case "iceberg cache invalidation" `Quick test_iceberg_cache_invalidation;
          Alcotest.test_case "random workload" `Quick test_random_workload;
        ] );
      ( "durability",
        [
          Alcotest.test_case "typed open errors" `Quick test_typed_errors;
          Alcotest.test_case "tree damage triggers rebuild" `Quick test_tree_damage_rebuilds;
          Alcotest.test_case "journal replay" `Quick test_wal_replay;
          Alcotest.test_case "torn tail discarded" `Quick test_torn_tail_discarded;
          Alcotest.test_case "stale generation skipped" `Quick test_stale_generation_skipped;
          Alcotest.test_case "multi-action recovery reported" `Quick
            test_multi_action_recovery_reported;
          Alcotest.test_case "legacy directory" `Quick test_legacy_dir;
          Alcotest.test_case "update journals two records" `Quick test_update_journals_two_records;
          Alcotest.test_case "invalid delete not journaled" `Quick test_invalid_delete_not_journaled;
        ] );
    ]
