open Qc_cube

(* ---------- Zipf ---------- *)

let test_zipf_pmf_sums_to_one () =
  let z = Qc_data.Zipf.create ~s:2.0 50 in
  let total = ref 0.0 in
  for k = 1 to 50 do
    total := !total +. Qc_data.Zipf.pmf z k
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_monotone () =
  let z = Qc_data.Zipf.create ~s:2.0 20 in
  for k = 1 to 19 do
    Alcotest.(check bool) "pmf decreasing" true
      (Qc_data.Zipf.pmf z k >= Qc_data.Zipf.pmf z (k + 1))
  done

let test_zipf_sampling_distribution () =
  let z = Qc_data.Zipf.create ~s:2.0 10 in
  let rng = Qc_util.Rng.create 13 in
  let counts = Array.make 11 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Qc_data.Zipf.sample z rng in
    if k < 1 || k > 10 then Alcotest.failf "out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  (* empirical frequency of rank 1 close to its pmf (~0.645 for s=2, n=10) *)
  let p1 = float_of_int counts.(1) /. float_of_int n in
  Alcotest.(check bool) "rank-1 frequency" true (Float.abs (p1 -. Qc_data.Zipf.pmf z 1) < 0.01);
  let p2 = float_of_int counts.(2) /. float_of_int n in
  Alcotest.(check bool) "rank-2 frequency" true (Float.abs (p2 -. Qc_data.Zipf.pmf z 2) < 0.01)

(* ---------- Synthetic ---------- *)

let test_synthetic_deterministic () =
  let spec = { Qc_data.Synthetic.default with rows = 500; dims = 4; cardinality = 10 } in
  let a = Qc_data.Synthetic.generate spec in
  let b = Qc_data.Synthetic.generate spec in
  Alcotest.(check int) "same size" (Table.n_rows a) (Table.n_rows b);
  for i = 0 to Table.n_rows a - 1 do
    Alcotest.(check (array int)) "same tuple" (Table.tuple a i) (Table.tuple b i)
  done

let test_synthetic_shape () =
  let spec = { Qc_data.Synthetic.default with rows = 1000; dims = 5; cardinality = 20 } in
  let t = Qc_data.Synthetic.generate spec in
  Alcotest.(check int) "rows" 1000 (Table.n_rows t);
  Alcotest.(check int) "dims" 5 (Table.n_dims t);
  Table.iter
    (fun cell _ ->
      Array.iter (fun v -> if v < 1 || v > 20 then Alcotest.failf "value %d" v) cell)
    t

let test_synthetic_delta_same_schema () =
  let spec = { Qc_data.Synthetic.default with rows = 100; dims = 3; cardinality = 5 } in
  let base = Qc_data.Synthetic.generate spec in
  let delta = Qc_data.Synthetic.generate_delta spec base 50 in
  Alcotest.(check bool) "same schema object" true (Table.schema base == Table.schema delta);
  Alcotest.(check int) "delta rows" 50 (Table.n_rows delta)

let test_pick_delete_delta () =
  let spec = { Qc_data.Synthetic.default with rows = 100; dims = 3; cardinality = 5 } in
  let base = Qc_data.Synthetic.generate spec in
  let delta = Qc_data.Synthetic.pick_delete_delta ~seed:3 base 20 in
  Alcotest.(check int) "20 rows" 20 (Table.n_rows delta);
  (* each delta row exists in base *)
  Table.iter
    (fun cell _ ->
      Alcotest.(check bool) "exists" true (Option.is_some (Table.find_row base cell)))
    delta

let test_query_generators () =
  let spec = { Qc_data.Synthetic.default with rows = 200; dims = 4; cardinality = 8 } in
  let base = Qc_data.Synthetic.generate spec in
  let points = Qc_data.Synthetic.random_point_queries ~seed:5 base 100 in
  Alcotest.(check int) "100 point queries" 100 (List.length points);
  List.iter (fun q -> Alcotest.(check int) "arity" 4 (Array.length q)) points;
  let ranges = Qc_data.Synthetic.random_range_queries ~seed:6 base 50 in
  Alcotest.(check int) "50 range queries" 50 (List.length ranges);
  List.iter
    (fun q ->
      let n_ranges =
        Array.fold_left (fun acc vs -> if Array.length vs > 1 then acc + 1 else acc) 0 q
      in
      Alcotest.(check bool) "1-3 range dims" true (n_ranges >= 1 && n_ranges <= 3))
    ranges

(* ---------- Weather proxy ---------- *)

let test_weather_schema () =
  let t = Qc_data.Weather.generate { Qc_data.Weather.default with rows = 2000 } in
  Alcotest.(check int) "9 dims" 9 (Table.n_dims t);
  Alcotest.(check int) "rows" 2000 (Table.n_rows t);
  Alcotest.(check string) "first dim" "stationid" (Schema.dim_name (Table.schema t) 0)

let test_weather_cardinalities_scale () =
  let cards = Qc_data.Weather.cardinalities ~scale:1.0 in
  Alcotest.(check (array int)) "paper cardinalities"
    [| 7037; 352; 179; 152; 101; 30; 10; 8; 2 |] cards;
  let small = Qc_data.Weather.cardinalities ~scale:0.01 in
  Array.iter (fun c -> Alcotest.(check bool) "at least 2" true (c >= 2)) small

let test_weather_functional_dependency () =
  (* longitude and latitude are functions of the station id *)
  let t = Qc_data.Weather.generate { Qc_data.Weather.default with rows = 5000 } in
  let seen = Hashtbl.create 256 in
  Table.iter
    (fun cell _ ->
      let sid = cell.(0) in
      match Hashtbl.find_opt seen sid with
      | None -> Hashtbl.replace seen sid (cell.(1), cell.(3))
      | Some (lon, lat) ->
        if cell.(1) <> lon || cell.(3) <> lat then
          Alcotest.failf "station %d moved" sid)
    t

let test_weather_compresses () =
  (* The correlations must make cover classes collapse: far fewer classes
     than cube cells. *)
  let t = Qc_data.Weather.generate { Qc_data.Weather.default with rows = 3000; scale = 0.02 } in
  let classes = Qc_core.Qc_table.of_table t in
  let cube = Buc.count_cells t in
  Alcotest.(check bool) "classes < 60% of cube cells" true
    (float_of_int (Qc_core.Qc_table.n_classes classes) < 0.6 *. float_of_int cube)

(* ---------- CSV ---------- *)

let test_csv_roundtrip () =
  let t = Helpers.sales_table () in
  let t' = Qc_data.Csv.of_string (Qc_data.Csv.to_string t) in
  Alcotest.(check int) "rows" (Table.n_rows t) (Table.n_rows t');
  Alcotest.(check int) "dims" (Table.n_dims t) (Table.n_dims t');
  for i = 0 to Table.n_rows t - 1 do
    let s = Table.schema t and s' = Table.schema t' in
    for j = 0 to Table.n_dims t - 1 do
      Alcotest.(check string) "value"
        (Schema.decode_value s j (Table.tuple t i).(j))
        (Schema.decode_value s' j (Table.tuple t' i).(j))
    done;
    Alcotest.(check (float 1e-9)) "measure" (Table.measure t i) (Table.measure t' i)
  done

let test_csv_quoting () =
  let schema = Schema.create ~measure_name:"m" [ "name" ] in
  let t = Table.create schema in
  Table.add_row t [ "has,comma" ] 1.0;
  Table.add_row t [ "has\"quote" ] 2.0;
  let t' = Qc_data.Csv.of_string (Qc_data.Csv.to_string t) in
  Alcotest.(check string) "comma survives" "has,comma"
    (Schema.decode_value (Table.schema t') 0 (Table.tuple t' 0).(0));
  Alcotest.(check string) "quote survives" "has\"quote"
    (Schema.decode_value (Table.schema t') 0 (Table.tuple t' 1).(0))

let test_csv_rejects_garbage () =
  Alcotest.check_raises "empty" (Failure "Csv: empty input") (fun () ->
      ignore (Qc_data.Csv.of_string ""));
  Alcotest.check_raises "bad measure" (Failure "Csv: measure is not a number") (fun () ->
      ignore (Qc_data.Csv.of_string "a,m\nx,notanumber\n"))

let () =
  Alcotest.run "qc_data"
    [
      ( "zipf",
        [
          Alcotest.test_case "pmf sums to 1" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "pmf monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "sampling matches pmf" `Quick test_zipf_sampling_distribution;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "shape" `Quick test_synthetic_shape;
          Alcotest.test_case "delta schema" `Quick test_synthetic_delta_same_schema;
          Alcotest.test_case "delete delta" `Quick test_pick_delete_delta;
          Alcotest.test_case "query generators" `Quick test_query_generators;
        ] );
      ( "weather",
        [
          Alcotest.test_case "schema" `Quick test_weather_schema;
          Alcotest.test_case "cardinalities" `Quick test_weather_cardinalities_scale;
          Alcotest.test_case "functional dependencies" `Quick test_weather_functional_dependency;
          Alcotest.test_case "compresses" `Quick test_weather_compresses;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "rejects garbage" `Quick test_csv_rejects_garbage;
        ] );
    ]
