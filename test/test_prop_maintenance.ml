(* Maintenance fuzzing: random batch inserts and deletes, checked against
   trees rebuilt from scratch, plus a coverage check that the corpus
   actually drives the interesting maintenance paths (class carving, class
   merging, link retargeting) — a fuzz suite that never reaches them would
   be green and worthless. *)

open Qc_cube
module T = Qc_core.Qc_tree
module M = Qc_core.Maintenance
module Q = Qc_core.Query
module Metrics = Qc_util.Metrics

let point_opt t c = Result.to_option (Q.point_result t c)

let add_rows table rows lo hi =
  for j = lo to hi - 1 do
    let cell, m = List.nth rows j in
    Table.add_encoded table cell m
  done

(* Insertion (Algorithm 2): after every batch the tree must be canonically
   identical to a tree built from the concatenated table. *)
let prop_insert_rebuild c =
  let schema = Prop.schema_of c in
  let rng = Qc_util.Rng.create (c.Prop.seed lxor 0xA11) in
  let rows = c.Prop.rows in
  let n = List.length rows in
  let n_base = if n = 0 then 0 else Qc_util.Rng.int rng (n + 1) in
  let base = Table.create schema in
  add_rows base rows 0 n_base;
  let tree = T.of_table base in
  let i = ref n_base in
  let ok = ref true in
  while !i < n do
    let k = 1 + Qc_util.Rng.int rng (n - !i) in
    let delta = Table.create schema in
    add_rows delta rows !i (!i + k);
    i := !i + k;
    ignore (M.insert_batch tree ~base ~delta);
    (* insert_batch appends the delta to [base] *)
    if T.validate tree <> Ok () then ok := false;
    if T.canonical_string tree <> T.canonical_string (T.of_table base) then ok := false
  done;
  (* the maintained tree must also survive the full invariant audit with
     the grown base as oracle *)
  if not (Prop.check_clean ~deep:true ~base tree) then ok := false;
  !ok

(* Deletion: the maintained tree may keep a few redundant (harmless) links,
   so instead of canonical equality we require a valid tree with the same
   class structure and identical point answers everywhere. *)
let prop_delete_equivalent c =
  let rows = c.Prop.rows in
  let n = List.length rows in
  if n = 0 then true
  else begin
    let schema = Prop.schema_of c in
    let rng = Qc_util.Rng.create (c.Prop.seed lxor 0xDE1) in
    let base = Table.create schema in
    add_rows base rows 0 n;
    let tree = T.of_table base in
    let k = Qc_util.Rng.int rng (n + 1) in
    let idxs = Array.init n Fun.id in
    Qc_util.Rng.shuffle rng idxs;
    let delta = Table.sub base (Array.to_list (Array.sub idxs 0 k)) in
    let new_base, _ = M.delete_batch tree ~base ~delta in
    let rebuilt = T.of_table new_base in
    let ok = ref (T.validate tree = Ok ()) in
    (* deep audit with the shrunk base as oracle: deletion may keep some
       redundant links, but every remaining invariant must hold *)
    if not (Prop.check_clean ~deep:true ~base:new_base tree) then ok := false;
    if T.n_classes tree <> T.n_classes rebuilt then ok := false;
    Prop.iter_cells c (fun cell ->
        let a = point_opt tree cell and b = point_opt rebuilt cell in
        let same =
          match (a, b) with
          | None, None -> true
          | Some x, Some y -> Agg.approx_equal x y
          | _ -> false
        in
        if not same then ok := false);
    !ok
  end

(* The warehouse must keep its frozen form in lockstep through thaw /
   maintain / refreeze cycles: packed answers equal tree answers after
   every mutation. *)
let prop_warehouse_freeze_cycle c =
  let rows = c.Prop.rows in
  let n = List.length rows in
  let schema = Prop.schema_of c in
  let rng = Qc_util.Rng.create (c.Prop.seed lxor 0xF2E) in
  let n_base = if n = 0 then 0 else Qc_util.Rng.int rng (n + 1) in
  let base = Table.create schema in
  add_rows base rows 0 n_base;
  let wh = Qc_warehouse.Warehouse.create base in
  if n_base < n then begin
    let delta = Table.create schema in
    add_rows delta rows n_base n;
    ignore (Qc_warehouse.Warehouse.insert wh delta)
  end;
  let tree = Qc_warehouse.Warehouse.tree wh in
  let ok = ref (Qc_warehouse.Warehouse.self_check wh = Ok ()) in
  Prop.iter_cells c (fun cell ->
      if Qc_warehouse.Warehouse.query wh cell <> point_opt tree cell then ok := false);
  !ok

(* Journal codec round trip on random instances: snapshot a table as a
   record, frame it, scan it back and re-materialize — rows, order and raw
   measure bits must survive; chopping the final byte must degrade to a
   torn tail, never to a wrong decode. *)
let prop_wal_roundtrip c =
  let module Wal = Qc_core.Wal in
  if c.Prop.rows = [] then true
  else begin
    let schema = Prop.schema_of c in
    let t = Prop.table_of ~schema c in
    let gen = c.Prop.seed land 0xFFFF in
    let r1 = Wal.record_of_table ~generation:gen Wal.Insert t in
    let r2 = { r1 with Wal.op = Wal.Delete; generation = gen + 1 } in
    let buf = Wal.header ^ Wal.encode r1 ^ Wal.encode r2 in
    let same_record (a : Wal.record) (b : Wal.record) =
      a.Wal.generation = b.Wal.generation
      && a.Wal.op = b.Wal.op
      && List.equal
           (fun (va, ma) (vb, mb) ->
             List.equal String.equal va vb
             && Int64.equal (Int64.bits_of_float ma) (Int64.bits_of_float mb))
           a.Wal.rows b.Wal.rows
    in
    match Wal.scan buf with
    | Error _ -> false
    | Ok s -> (
      s.Wal.consumed = String.length buf
      && Option.is_none s.Wal.torn
      && (match s.Wal.records with
         | [ a; b ] ->
           same_record a r1 && same_record b r2
           (* re-materializing under the same schema reproduces the table *)
           && same_record r1
                (Wal.record_of_table ~generation:gen Wal.Insert (Wal.table_of_record schema a))
         | _ -> false)
      &&
      (* a crash one byte short of the end must yield a torn tail holding
         exactly the first record *)
      match Wal.scan (String.sub buf 0 (String.length buf - 1)) with
      | Error _ -> false
      | Ok s -> List.length s.Wal.records = 1 && Option.is_some s.Wal.torn)
  end

(* Replay equivalence: a warehouse reopened from checkpoint + journal must
   be indistinguishable — row for row and query for query — from the live
   handle that executed the mutations.  The reopened side re-encodes its
   dictionary from file order, so the comparison goes through decoded
   values. *)
let prop_wal_replay c =
  let module W = Qc_warehouse.Warehouse in
  let module Wal = Qc_core.Wal in
  let rows = c.Prop.rows in
  let n = List.length rows in
  let schema = Prop.schema_of c in
  let rng = Qc_util.Rng.create (c.Prop.seed lxor 0x3A1) in
  let n_base = if n = 0 then 0 else Qc_util.Rng.int rng (n + 1) in
  let base = Table.create schema in
  add_rows base rows 0 n_base;
  let w = W.create base in
  let dir = Filename.temp_file "qcprop" "" in
  Sys.remove dir;
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  W.save w dir;
  (* random journaled batches: the leftover rows as inserts, interleaved
     with deletes of random resident rows *)
  let journaled = ref 0 in
  let i = ref n_base in
  while !i < n do
    let k = 1 + Qc_util.Rng.int rng (n - !i) in
    let delta = Table.create schema in
    add_rows delta rows !i (!i + k);
    i := !i + k;
    ignore (W.insert w delta);
    incr journaled;
    let resident = Table.n_rows (W.table w) in
    if resident > 0 && Qc_util.Rng.int rng 3 = 0 then begin
      let idxs = Array.init resident Fun.id in
      Qc_util.Rng.shuffle rng idxs;
      let k = 1 + Qc_util.Rng.int rng (min 3 resident) in
      ignore (W.delete w (Table.sub (W.table w) (Array.to_list (Array.sub idxs 0 k))));
      incr journaled
    end
  done;
  let w' = W.open_dir dir in
  let decoded h = (Wal.record_of_table ~generation:0 Wal.Insert (W.table h)).Wal.rows in
  let sort_rows l =
    List.sort
      (fun (va, ma) (vb, mb) ->
        match List.compare String.compare va vb with 0 -> Float.compare ma mb | o -> o)
      l
  in
  let same_rows =
    List.equal
      (fun (va, ma) (vb, mb) ->
        List.equal String.equal va vb && Int64.equal (Int64.bits_of_float ma) (Int64.bits_of_float mb))
      (sort_rows (decoded w)) (sort_rows (decoded w'))
  in
  let ok = ref (same_rows && (W.last_recovery w').W.replayed = !journaled) in
  if not (Prop.check_clean ~deep:true ~base:(W.table w') (W.tree w')) then ok := false;
  Prop.iter_cells ~sample:400 c (fun cell ->
      let strs =
        List.init c.Prop.dims (fun d ->
            if cell.(d) = Cell.all then "*" else Printf.sprintf "d%dv%d" d cell.(d))
      in
      let live = W.query w (Array.copy cell) in
      let reopened =
        match Cell.parse (W.schema w') strs with
        | exception Invalid_argument _ -> None
        | qc -> W.query w' qc
      in
      let same =
        match (live, reopened) with
        | None, None -> true
        | Some a, Some b -> Agg.approx_equal a b
        | _ -> false
      in
      if not same then ok := false);
  !ok

(* Coverage: across deterministic textbook scenarios plus a fixed random
   corpus, each maintenance path must fire at least once. *)
let test_metrics_coverage () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled false)
    (fun () ->
      (* Example 3: carving insert on the running example *)
      let base = Helpers.sales_table () in
      let schema = Table.schema base in
      let tree = T.of_table base in
      let delta = Table.create schema in
      Table.add_row delta [ "S2"; "P2"; "f" ] 3.0;
      Table.add_row delta [ "S2"; "P3"; "f" ] 6.0;
      ignore (M.insert_batch tree ~base ~delta);
      (* Example 4: merging delete on the grown table *)
      let delta = Table.sub base [ 3; 4 ] in
      ignore (M.delete_batch tree ~base ~delta);
      (* random corpus: interleaved inserts and deletes *)
      for seed = 0 to 24 do
        let c = Prop.make_case ~seed:(7_000 + seed) ~n_rows:30 in
        let schema = Prop.schema_of c in
        let base = Table.create schema in
        add_rows base c.Prop.rows 0 15;
        let tree = T.of_table base in
        let delta = Table.create schema in
        add_rows delta c.Prop.rows 15 30;
        ignore (M.insert_batch tree ~base ~delta);
        let rng = Qc_util.Rng.create seed in
        let idxs = Array.init (Table.n_rows base) Fun.id in
        Qc_util.Rng.shuffle rng idxs;
        let delta = Table.sub base (Array.to_list (Array.sub idxs 0 10)) in
        ignore (M.delete_batch tree ~base ~delta)
      done;
      let v name = Metrics.value (Metrics.counter name) in
      Alcotest.(check bool) "classes were carved" true (v "maint.classes_carved" > 0);
      Alcotest.(check bool) "classes were merged" true (v "maint.classes_merged" > 0);
      Alcotest.(check bool) "links were retargeted" true (v "maint.link_retargets" > 0))

let () =
  Alcotest.run "qc_prop_maintenance"
    [
      ( "fuzz",
        [
          Prop.qcheck_case ~count:200 ~name:"insert batches rebuild canonically" Prop.arb_case
            prop_insert_rebuild;
          Prop.qcheck_case ~count:150 ~name:"delete batches stay query-equivalent" Prop.arb_case
            prop_delete_equivalent;
          Prop.qcheck_case ~count:100 ~name:"warehouse freeze/thaw cycle stays consistent"
            Prop.arb_case prop_warehouse_freeze_cycle;
          Prop.qcheck_case ~count:150 ~name:"journal codec round trip" Prop.arb_case
            prop_wal_roundtrip;
          Prop.qcheck_case ~count:60 ~name:"journal replay reproduces the live warehouse"
            Prop.arb_case prop_wal_replay;
        ] );
      ("coverage", [ Alcotest.test_case "maintenance paths all fire" `Quick test_metrics_coverage ]);
    ]
