(* Quickstart: the paper's running example, end to end.

   Builds the QC-tree of the 3-tuple sales table of Figure 1, prints the
   quotient cube's classes and the tree, and answers the queries of
   Example 5.  Run with:  dune exec examples/quickstart.exe *)

open Qc_cube

let () =
  (* 1. A base table: sales(Store, Product, Season) with measure Sale. *)
  let schema = Schema.create ~measure_name:"Sale" [ "Store"; "Product"; "Season" ] in
  let table = Table.create schema in
  Table.add_row table [ "S1"; "P1"; "s" ] 6.0;
  Table.add_row table [ "S1"; "P2"; "s" ] 12.0;
  Table.add_row table [ "S2"; "P1"; "f" ] 9.0;
  Printf.printf "Base table: %d tuples, %d dimensions\n\n" (Table.n_rows table)
    (Table.n_dims table);

  (* 2. The cover quotient cube: classes of cover-equivalent cells. *)
  let quotient = Qc_core.Quotient.of_table table in
  Printf.printf "Quotient cube: %d classes (the full cube has %d cells)\n"
    (Qc_core.Quotient.n_classes quotient)
    (Buc.count_cells table);
  Array.iter
    (fun cls -> Format.printf "  %a@." (Qc_core.Quotient.pp_class schema) cls)
    (Qc_core.Quotient.classes quotient);

  (* 3. The QC-tree: the compact store of those classes (paper Figure 4). *)
  let tree = Qc_core.Qc_tree.of_table table in
  Printf.printf "\nQC-tree: %d nodes, %d links, %d class nodes, %d bytes\n"
    (Qc_core.Qc_tree.n_nodes tree) (Qc_core.Qc_tree.n_links tree)
    (Qc_core.Qc_tree.n_classes tree) (Qc_core.Qc_tree.bytes tree);
  Format.printf "%a@." Qc_core.Qc_tree.pp tree;

  (* 4. Point queries (paper Example 5). *)
  let q vals =
    let cell = Cell.parse schema vals in
    match Qc_core.Query.point_value_result tree Agg.Avg cell with
    | Ok avg -> Printf.printf "  AVG(Sale) at %s = %g\n" (Cell.to_string schema cell) avg
    | Error _ -> Printf.printf "  AVG(Sale) at %s = NULL (empty cover)\n" (Cell.to_string schema cell)
  in
  print_endline "Point queries:";
  q [ "S2"; "*"; "f" ];
  q [ "S2"; "*"; "s" ];
  q [ "*"; "P2"; "*" ];
  q [ "*"; "*"; "*" ];

  (* 5. A range query (paper Example 6): stores {S1,S2}, product P1, fall. *)
  let range =
    [|
      [| Schema.encode_value schema 0 "S1"; Schema.encode_value schema 0 "S2" |];
      [| Schema.encode_value schema 1 "P1" |];
      [| Schema.encode_value schema 2 "f" |];
    |]
  in
  print_endline "Range query ({S1,S2}, P1, f):";
  List.iter
    (fun (cell, agg) ->
      Printf.printf "  %s -> AVG %g\n" (Cell.to_string schema cell) (Agg.value Agg.Avg agg))
    (Result.get_ok (Qc_core.Query.range_result tree range));

  (* 6. An iceberg query: classes with SUM(Sale) of at least 10. *)
  let index = Qc_core.Query.make_index tree Agg.Sum in
  print_endline "Iceberg query (SUM >= 10):";
  List.iter
    (fun (cell, agg) ->
      Printf.printf "  %s -> SUM %g\n" (Cell.to_string schema cell) (Agg.value Agg.Sum agg))
    (Qc_core.Query.iceberg index ~threshold:10.0)
