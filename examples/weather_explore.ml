(* The paper's real-data scenario on the weather proxy.

   Builds the QC-tree over a 9-dimensional weather dataset (see
   Qc_data.Weather for the substitution note), compares its size against the
   QC-table and Dwarf, runs range and constrained iceberg queries, and
   appends a fresh day of reports with the batch insertion algorithm.
   Run with:  dune exec examples/weather_explore.exe *)

open Qc_cube

let () =
  let spec = { Qc_data.Weather.default with rows = 30_000; scale = 0.05 } in
  let table = Qc_data.Weather.generate spec in
  let schema = Table.schema table in
  Printf.printf "Weather proxy: %d reports, %d dimensions, cardinalities [%s]\n"
    (Table.n_rows table) (Table.n_dims table)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Schema.cardinalities schema))));

  let (tree, t_tree) = Qc_util.Timer.time (fun () -> Qc_core.Qc_tree.of_table table) in
  let (qtab, t_qtab) = Qc_util.Timer.time (fun () -> Qc_core.Qc_table.of_table table) in
  let (dwarf, t_dwarf) = Qc_util.Timer.time (fun () -> Qc_dwarf.Dwarf.build table) in
  let cube_bytes = Buc.cube_bytes table in
  let show name bytes dt =
    Printf.printf "  %-9s %10d bytes  (%5.1f%% of the cube)  built in %.2fs\n" name bytes
      (100.0 *. float_of_int bytes /. float_of_int cube_bytes) dt
  in
  Printf.printf "\nStorage (cube as a relation: %d bytes):\n" cube_bytes;
  show "QC-tree" (Qc_core.Qc_tree.bytes tree) t_tree;
  show "QC-table" (Qc_core.Qc_table.bytes qtab) t_qtab;
  show "Dwarf" (Qc_dwarf.Dwarf.bytes dwarf) t_dwarf;

  (* Range query: all bright daytime reports of the two most common weather
     codes, any station. *)
  let d = Table.n_dims table in
  let range = Array.make d [||] in
  range.(4) <- [| 1; 2 |] (* present-weather codes *);
  range.(8) <- [| 2 |] (* brightness = bright *);
  let (results, dt) = Qc_util.Timer.time (fun () -> Result.get_ok (Qc_core.Query.range_result tree range)) in
  Printf.printf "\nRange query (weather in {1,2}, bright): %d cells in %.4fs\n"
    (List.length results) dt;
  List.iteri
    (fun i (cell, agg) ->
      if i < 4 then
        Printf.printf "  %s -> %d reports, avg temp %.1f\n" (Cell.to_string schema cell)
          agg.Agg.count (Agg.value Agg.Avg agg))
    results;

  (* Constrained iceberg: among night reports, contexts with many reports. *)
  let index = Qc_core.Query.make_index tree Agg.Count in
  let constrained = Array.make d [||] in
  constrained.(7) <- [| 1; 2 |] (* early hours *);
  let heavy =
    Qc_core.Query.iceberg_range ~strategy:`Mark tree index constrained ~threshold:500.0
  in
  Printf.printf "\nConstrained iceberg (early hours, count >= 500): %d contexts\n"
    (List.length heavy);

  (* A new day of reports arrives: maintain incrementally. *)
  let delta = Qc_data.Weather.generate_delta spec table 1_000 in
  let base = table in
  let (stats, dt_inc) =
    Qc_util.Timer.time (fun () -> Qc_core.Maintenance.insert_batch tree ~base ~delta)
  in
  Printf.printf
    "\nBatch insertion of %d reports: %.2fs (%d updates, %d splits, %d new classes)\n"
    (Table.n_rows delta) dt_inc stats.updated stats.carved stats.fresh;
  let dt_rebuild = Qc_util.Timer.time_s (fun () -> ignore (Qc_core.Qc_tree.of_table base)) in
  Printf.printf "Recomputing from scratch instead: %.2fs (%.1fx slower)\n" dt_rebuild
    (dt_rebuild /. Float.max 1e-9 dt_inc)
