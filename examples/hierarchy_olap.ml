(* Hierarchical OLAP over the QC-tree.

   The paper's range queries enumerate value sets precisely so that
   "numerical and hierarchical ranges" are both expressible (Section 4.2).
   This example builds concept hierarchies over two dimensions of a sales
   cube — a calendar over days and a geography over cities — and answers
   queries at arbitrary hierarchy levels through the same QC-tree.
   Run with:  dune exec examples/hierarchy_olap.exe *)

open Qc_cube

let days = [ "d01"; "d02"; "d03"; "d04"; "d05"; "d06" ]
let cities = [ "tokyo"; "osaka"; "berlin"; "munich"; "paris" ]
let products = [ "laptop"; "phone"; "tablet" ]

let () =
  (* A deterministic little fact table. *)
  let schema = Schema.create ~measure_name:"revenue" [ "day"; "city"; "product" ] in
  let table = Table.create schema in
  let rng = Qc_util.Rng.create 7 in
  for _ = 1 to 400 do
    let pick l = List.nth l (Qc_util.Rng.int rng (List.length l)) in
    Table.add_row table
      [ pick days; pick cities; pick products ]
      (float_of_int (50 + Qc_util.Rng.int rng 500))
  done;
  let tree = Qc_core.Qc_tree.of_table table in
  Printf.printf "%d sales, %d classes in the quotient cube\n" (Table.n_rows table)
    (Qc_core.Qc_tree.n_classes tree);

  (* Calendar hierarchy: days -> weeks. *)
  let calendar = Hierarchy.create schema ~dim:0 in
  Hierarchy.add_concept calendar "week1";
  Hierarchy.add_concept calendar "week2";
  List.iteri
    (fun i d -> Hierarchy.assign calendar ~value:d (if i < 3 then "week1" else "week2"))
    days;

  (* Geography: cities -> countries -> regions. *)
  let geo = Hierarchy.create schema ~dim:1 in
  Hierarchy.add_concept geo "asia";
  Hierarchy.add_concept geo "europe";
  Hierarchy.add_concept geo ~parent:"asia" "japan";
  Hierarchy.add_concept geo ~parent:"europe" "germany";
  Hierarchy.add_concept geo ~parent:"europe" "france";
  Hierarchy.assign geo ~value:"tokyo" "japan";
  Hierarchy.assign geo ~value:"osaka" "japan";
  Hierarchy.assign geo ~value:"berlin" "germany";
  Hierarchy.assign geo ~value:"munich" "germany";
  Hierarchy.assign geo ~value:"paris" "france";

  (* Revenue per region, any week, any product: one hierarchical range
     query per concept. *)
  print_endline "\nRevenue by region:";
  List.iter
    (fun region ->
      let range = [| [||]; Hierarchy.range_for geo region; [||] |] in
      let results = Result.get_ok (Qc_core.Query.range_result tree range) in
      let total = List.fold_left (fun acc (_, a) -> acc +. a.Agg.sum) 0.0 results in
      Printf.printf "  %-7s %8.0f  (over %d cities)\n" region total (List.length results))
    [ "asia"; "europe" ];

  (* Cross hierarchy levels: week1 x germany, per product. *)
  print_endline "\nWeek 1 in Germany, by product:";
  List.iter
    (fun product ->
      let code = Schema.encode_value schema 2 product in
      let range =
        [|
          Hierarchy.range_for calendar "week1";
          Hierarchy.range_for geo "germany";
          [| code |];
        |]
      in
      let results = Result.get_ok (Qc_core.Query.range_result tree range) in
      let total = List.fold_left (fun acc (_, a) -> acc +. a.Agg.sum) 0.0 results in
      Printf.printf "  %-7s %8.0f\n" product total)
    products;

  (* Drill down the geography: europe -> germany -> berlin. *)
  print_endline "\nDrilling down the geography (all weeks, all products):";
  let show label range =
    let results = Result.get_ok (Qc_core.Query.range_result tree range) in
    let total = List.fold_left (fun acc (_, a) -> acc +. a.Agg.sum) 0.0 results in
    let count = List.fold_left (fun acc (_, a) -> acc + a.Agg.count) 0 results in
    Printf.printf "  %-8s revenue %8.0f over %d sales\n" label total count
  in
  show "europe" [| [||]; Hierarchy.range_for geo "europe"; [||] |];
  show "germany" [| [||]; Hierarchy.range_for geo "germany"; [||] |];
  show "berlin"
    [| [||]; [| Schema.encode_value schema 1 "berlin" |]; [||] |]
