(* A full warehouse lifecycle: import, build, persist, reload, maintain.

   Demonstrates the operational loop a deployment runs through: base data
   arrives as CSV, the QC-tree is built once and saved to disk, later
   sessions reload it, and day-to-day inserts/deletes are applied
   incrementally while the answers provably stay identical to a rebuild.
   Run with:  dune exec examples/warehouse_lifecycle.exe *)

open Qc_cube

let csv_data =
  "store,product,quarter,channel,revenue\n"
  ^ String.concat "\n"
      (List.concat_map
         (fun (store, mult) ->
           List.concat_map
             (fun product ->
               List.map
                 (fun (quarter, base) ->
                   Printf.sprintf "%s,%s,%s,%s,%g" store product quarter
                     (if base > 200 then "online" else "retail")
                     (float_of_int (base * mult)))
                 [ ("Q1", 100); ("Q2", 150); ("Q3", 220); ("Q4", 300) ])
             [ "laptop"; "phone"; "tablet" ])
         [ ("north", 2); ("south", 3); ("west", 1) ])
  ^ "\n"

let () =
  (* 1. Import. *)
  let base = Qc_data.Csv.of_string csv_data in
  let schema = Table.schema base in
  Printf.printf "Imported %d rows from CSV (%d dimensions, measure %S)\n"
    (Table.n_rows base) (Table.n_dims base) (Schema.measure_name schema);

  (* 2. Build and persist. *)
  let tree = Qc_core.Qc_tree.of_table base in
  let path = Filename.temp_file "warehouse" ".qct" in
  Qc_core.Serial.save tree path;
  Printf.printf "Built QC-tree (%d classes, %d bytes) and saved to %s\n"
    (Qc_core.Qc_tree.n_classes tree) (Qc_core.Qc_tree.bytes tree) path;

  (* 3. A later session reloads it and answers immediately. *)
  let tree = Qc_core.Serial.load path in
  Sys.remove path;
  let q vals =
    match Qc_core.Query.point_result tree (Cell.parse schema vals) with
    | Ok a ->
      Printf.printf "  %s: SUM=%g AVG=%.1f COUNT=%d\n" (String.concat "," vals)
        a.Agg.sum (Agg.value Agg.Avg a) a.Agg.count
    | Error _ -> Printf.printf "  %s: no data\n" (String.concat "," vals)
  in
  print_endline "Reloaded; sample queries:";
  q [ "north"; "*"; "Q4"; "*" ];
  q [ "*"; "phone"; "*"; "*" ];
  q [ "*"; "*"; "*"; "online" ];

  (* 4. New sales arrive: batch insertion. *)
  let delta = Table.create schema in
  Table.add_row delta [ "north"; "laptop"; "Q4"; "online" ] 480.0;
  Table.add_row delta [ "east"; "phone"; "Q1"; "retail" ] 90.0;
  let stats = Qc_core.Maintenance.insert_batch tree ~base ~delta in
  Printf.printf
    "\nInserted %d rows incrementally (%d updated, %d split, %d new classes)\n"
    (Table.n_rows delta) stats.updated stats.carved stats.fresh;
  q [ "north"; "*"; "Q4"; "*" ];
  q [ "east"; "*"; "*"; "*" ];

  (* Theorem 2 in action: the incrementally maintained tree is the tree a
     full rebuild would produce. *)
  let rebuilt = Qc_core.Qc_tree.of_table base in
  Printf.printf "Identical to a full rebuild: %b\n"
    (String.equal (Qc_core.Qc_tree.canonical_string tree) (Qc_core.Qc_tree.canonical_string rebuilt));

  (* 5. A correction: the east sale is cancelled. *)
  let removal = Table.create schema in
  Table.add_row removal [ "east"; "phone"; "Q1"; "retail" ] 90.0;
  let base, dstats = Qc_core.Maintenance.delete_batch tree ~base ~delta:removal in
  Printf.printf "\nDeleted the correction (%d classes removed, %d merged)\n"
    dstats.removed dstats.merged;
  q [ "east"; "*"; "*"; "*" ];
  Printf.printf "Rows in base table now: %d\n" (Table.n_rows base)
